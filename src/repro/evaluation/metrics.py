"""Quantitative effectiveness metrics (the paper's Table 6).

Two metrics compare result sets produced by different query methods:

* **coverage** — "do the result sets achieve high information coverage on
  the query topics?"  Following Lin & Bilmes (2010) / Badanidiyuru et al.
  (2014), the coverage of a result set ``S`` w.r.t. a query vector ``x`` is
  ``Σ_{e ∈ A_t \\ S} max_{e' ∈ S} rel(e, x) · sim(e, e')`` — every other
  active element is credited by how well its best representative in ``S``
  covers it, weighted by its own relevance to the query.  ``rel`` is
  topic-space cosine relevance and ``sim`` is *textual* (bag-of-words
  cosine) similarity, so "covering" an element means actually containing
  the information it talks about, not merely sitting on the same topic.
  We report the normalised variant (divided by ``Σ_e rel(e, x)``) so values
  are comparable across datasets and window sizes.

* **influence** — "are the result sets referred to by a large number of
  elements?"  The number of in-window elements referencing at least one
  result element, linearly scaled by the same count achieved by the ``k``
  most-referenced elements (the top-k influential set), so 1.0 means "as
  influential as the most influential possible selection of the same size".
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.element import SocialElement


def topic_similarity(left: Optional[np.ndarray], right: Optional[np.ndarray]) -> float:
    """Cosine similarity between two topic vectors (0.0 when either is missing)."""
    if left is None or right is None:
        return 0.0
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    left_norm = float(np.linalg.norm(left))
    right_norm = float(np.linalg.norm(right))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return float(np.dot(left, right)) / (left_norm * right_norm)


def relevance(element: SocialElement, query_vector: np.ndarray) -> float:
    """``rel(e, x)``: topic-space cosine relevance of an element to a query."""
    return topic_similarity(element.topic_distribution, query_vector)


def _token_counts(element: SocialElement) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for token in element.tokens:
        counts[token] = counts.get(token, 0) + 1
    return counts


def text_similarity(left: Mapping[str, int], right: Mapping[str, int]) -> float:
    """Bag-of-words cosine similarity between two token-count vectors."""
    if not left or not right:
        return 0.0
    if len(right) < len(left):
        left, right = right, left
    dot = float(sum(count * right.get(token, 0) for token, count in left.items()))
    if dot == 0.0:
        return 0.0
    left_norm = float(np.sqrt(sum(count * count for count in left.values())))
    right_norm = float(np.sqrt(sum(count * count for count in right.values())))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return dot / (left_norm * right_norm)


def coverage_score(
    selected: Sequence[SocialElement],
    candidates: Sequence[SocialElement],
    query_vector: np.ndarray,
    normalize: bool = True,
) -> float:
    """Information coverage of ``selected`` over ``candidates`` w.r.t. a query.

    ``candidates`` should be the active set at query time (result elements
    themselves are excluded from the summation, as in the paper).
    """
    if not selected:
        return 0.0
    selected_ids = {element.element_id for element in selected}
    selected_tokens = [_token_counts(member) for member in selected]
    total = 0.0
    normaliser = 0.0
    for element in candidates:
        element_relevance = relevance(element, query_vector)
        normaliser += element_relevance
        if element.element_id in selected_ids or element_relevance == 0.0:
            continue
        element_tokens = _token_counts(element)
        best = max(
            text_similarity(element_tokens, member_tokens)
            for member_tokens in selected_tokens
        )
        total += element_relevance * best
    if not normalize:
        return total
    return total / normaliser if normaliser > 0.0 else 0.0


def _followers_by_parent(window_elements: Sequence[SocialElement]) -> Dict[int, Set[int]]:
    followers: Dict[int, Set[int]] = {}
    for element in window_elements:
        for parent_id in element.references:
            followers.setdefault(parent_id, set()).add(element.element_id)
    return followers


def influence_score(
    selected_ids: Iterable[int],
    window_elements: Sequence[SocialElement],
    k: Optional[int] = None,
    normalize: bool = True,
) -> float:
    """Referenced-by count of the selection, optionally scaled to [0, 1].

    ``window_elements`` are the elements of the sliding window at query time
    (only in-window references count, matching the time-critical influence
    of the paper).  When ``normalize`` is true the count is divided by the
    best achievable count of any ``k``-subset — the union of the ``k``
    most-referenced parents (``k`` defaults to the selection size).
    """
    selected = list(selected_ids)
    if not selected:
        return 0.0
    followers = _followers_by_parent(window_elements)
    covered: Set[int] = set()
    for element_id in selected:
        covered.update(followers.get(element_id, ()))
    raw = float(len(covered))
    if not normalize:
        return raw

    size = k if k is not None else len(selected)
    top_parents = sorted(followers, key=lambda pid: (-len(followers[pid]), pid))[:size]
    best: Set[int] = set()
    for parent_id in top_parents:
        best.update(followers[parent_id])
    if not best:
        return 0.0
    return raw / float(len(best))


def quality_ratios(scores: Mapping[str, float], reference: str = "celf") -> Dict[str, float]:
    """Each method's score divided by the reference method's score.

    Used for Figures 8 and 11: the paper reports MTTS/MTTD quality relative
    to CELF.  Methods are left out of the result when the reference score is
    not positive.
    """
    reference_score = scores.get(reference, 0.0)
    if reference_score <= 0.0:
        return {}
    return {name: score / reference_score for name, score in scores.items()}


def average_pairwise_similarity(elements: Sequence[SocialElement]) -> float:
    """Mean pairwise topic similarity of a result set (diversity diagnostic)."""
    if len(elements) < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i, left in enumerate(elements):
        for right in elements[i + 1 :]:
            total += topic_similarity(left.topic_distribution, right.topic_distribution)
            pairs += 1
    return total / pairs if pairs else 0.0


def reference_count(
    selected_ids: Iterable[int], window_elements: Sequence[SocialElement]
) -> int:
    """Total number of in-window references pointing at the selection."""
    selected = set(selected_ids)
    count = 0
    for element in window_elements:
        count += sum(1 for parent_id in element.references if parent_id in selected)
    return count
