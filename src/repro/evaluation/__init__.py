"""Effectiveness evaluation: metrics, workloads and the simulated user study.

* :mod:`repro.evaluation.metrics` — the quantitative coverage and influence
  metrics of Table 6 plus quality-ratio helpers.
* :mod:`repro.evaluation.kappa` — Cohen's linearly weighted kappa, the
  inter-rater agreement statistic the paper reports for the user study.
* :mod:`repro.evaluation.workload` — k-SIR query workload generation
  (random keyword draws, query vectors, random query timestamps).
* :mod:`repro.evaluation.user_study` — the simulated-evaluator proxy for the
  paper's 30-volunteer user study (Table 5); see DESIGN.md §4 for the
  substitution rationale.
"""

from repro.evaluation.kappa import cohen_weighted_kappa
from repro.evaluation.metrics import (
    coverage_score,
    influence_score,
    quality_ratios,
    relevance,
    topic_similarity,
)
from repro.evaluation.user_study import SimulatedUserStudy, UserStudyOutcome
from repro.evaluation.workload import QueryWorkload, WorkloadGenerator

__all__ = [
    "QueryWorkload",
    "SimulatedUserStudy",
    "UserStudyOutcome",
    "WorkloadGenerator",
    "cohen_weighted_kappa",
    "coverage_score",
    "influence_score",
    "quality_ratios",
    "relevance",
    "topic_similarity",
]
