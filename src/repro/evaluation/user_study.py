"""A simulated user study standing in for the paper's 30-volunteer study.

The paper (Section 5.2, Table 5) asks human evaluators to rank the result
sets of five query methods on two aspects — *representativeness* (relevance
to the query topic plus information coverage) and *impact* (how much the
selected elements were cited / commented / retweeted) — on a 1–5 scale, with
three evaluators per query, and reports per-method averages together with
Cohen's linearly weighted kappa for inter-rater agreement.

Human raters cannot be bundled with a library, so this module simulates them
(see DESIGN.md §4): each synthetic evaluator scores a result set by the same
operational definitions given to the humans —

* representativeness = mean topic relevance of the result to the query,
  blended with the normalised coverage metric;
* impact = the normalised in-window referenced-by count —

perturbed with evaluator-specific noise, then converts the per-query scores
into 1–5 rankings exactly as the study instructions prescribe.  The kappa
machinery is the real statistic, computed between every pair of simulated
evaluators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.element import SocialElement
from repro.evaluation.kappa import cohen_weighted_kappa
from repro.evaluation.metrics import coverage_score, influence_score, relevance
from repro.utils.rng import SeedLike, make_rng


@dataclass
class JudgedQuery:
    """Per-query evaluator ratings: aspect → method → one rating per evaluator."""

    representativeness: Dict[str, List[int]] = field(default_factory=dict)
    impact: Dict[str, List[int]] = field(default_factory=dict)


@dataclass
class UserStudyOutcome:
    """Aggregated study results in the shape of the paper's Table 5."""

    representativeness: Dict[str, float]
    impact: Dict[str, float]
    representativeness_kappa: Tuple[float, float, float]
    impact_kappa: Tuple[float, float, float]
    num_queries: int
    evaluators_per_query: int

    def as_rows(self) -> List[Tuple[str, float, float]]:
        """``(method, representativeness, impact)`` rows, best method last."""
        methods = sorted(self.representativeness)
        return [
            (method, self.representativeness[method], self.impact[method])
            for method in methods
        ]


class SimulatedUserStudy:
    """Simulates the paper's evaluator panel over method result sets."""

    def __init__(
        self,
        evaluators_per_query: int = 3,
        noise: float = 0.1,
        rating_scale: int = 5,
        seed: SeedLike = None,
    ) -> None:
        if evaluators_per_query < 2:
            raise ValueError("need at least 2 evaluators per query to compute kappa")
        if noise < 0:
            raise ValueError("noise must be non-negative")
        if rating_scale < 2:
            raise ValueError("rating_scale must be at least 2")
        self.evaluators_per_query = int(evaluators_per_query)
        self.noise = float(noise)
        self.rating_scale = int(rating_scale)
        self._rng = make_rng(seed)

    # -- ground-truth aspect scores ------------------------------------------------------

    @staticmethod
    def representativeness_truth(
        result: Sequence[SocialElement],
        query_vector: np.ndarray,
        candidates: Sequence[SocialElement],
    ) -> float:
        """Relevance-plus-coverage score in [0, 1] for one result set."""
        if not result:
            return 0.0
        mean_relevance = float(
            np.mean([relevance(element, query_vector) for element in result])
        )
        coverage = coverage_score(result, candidates, query_vector, normalize=True)
        return 0.5 * mean_relevance + 0.5 * coverage

    @staticmethod
    def impact_truth(
        result: Sequence[SocialElement],
        window_elements: Sequence[SocialElement],
    ) -> float:
        """Normalised referenced-by score in [0, 1] for one result set."""
        if not result:
            return 0.0
        return influence_score(
            [element.element_id for element in result],
            window_elements,
            k=len(result),
            normalize=True,
        )

    # -- evaluator simulation --------------------------------------------------------------

    def _rank_to_rating(self, rank: int, num_methods: int) -> int:
        """Map a rank (1 = best) onto the 1..rating_scale ladder."""
        if num_methods <= 1:
            return self.rating_scale
        position = (num_methods - rank) / (num_methods - 1)
        return int(round(1 + position * (self.rating_scale - 1)))

    def _evaluator_ratings(self, truths: Mapping[str, float]) -> Dict[str, int]:
        """One simulated evaluator's 1..scale ratings for every method."""
        methods = sorted(truths)
        noisy = {
            method: truths[method] + self._rng.normal(0.0, self.noise)
            for method in methods
        }
        ordered = sorted(methods, key=lambda method: (-noisy[method], method))
        ratings: Dict[str, int] = {}
        for rank, method in enumerate(ordered, start=1):
            ratings[method] = self._rank_to_rating(rank, len(methods))
        return ratings

    def judge_query(
        self,
        results: Mapping[str, Sequence[SocialElement]],
        query_vector: np.ndarray,
        candidates: Sequence[SocialElement],
        window_elements: Sequence[SocialElement],
    ) -> JudgedQuery:
        """Simulate the evaluator panel on one query's result sets."""
        representativeness_truth = {
            method: self.representativeness_truth(result, query_vector, candidates)
            for method, result in results.items()
        }
        impact_truth = {
            method: self.impact_truth(result, window_elements)
            for method, result in results.items()
        }
        judged = JudgedQuery()
        for method in results:
            judged.representativeness[method] = []
            judged.impact[method] = []
        for _ in range(self.evaluators_per_query):
            repr_ratings = self._evaluator_ratings(representativeness_truth)
            impact_ratings = self._evaluator_ratings(impact_truth)
            for method in results:
                judged.representativeness[method].append(repr_ratings[method])
                judged.impact[method].append(impact_ratings[method])
        return judged

    # -- aggregation --------------------------------------------------------------------------

    def _kappa_stats(
        self, judged_queries: Sequence[JudgedQuery], aspect: str
    ) -> Tuple[float, float, float]:
        values: List[float] = []
        for judged in judged_queries:
            ratings = getattr(judged, aspect)
            methods = sorted(ratings)
            if not methods:
                continue
            evaluators = len(ratings[methods[0]])
            for left in range(evaluators):
                for right in range(left + 1, evaluators):
                    ratings_left = [ratings[m][left] for m in methods]
                    ratings_right = [ratings[m][right] for m in methods]
                    values.append(
                        cohen_weighted_kappa(
                            ratings_left, ratings_right, num_categories=self.rating_scale
                        )
                    )
        if not values:
            return (0.0, 0.0, 0.0)
        return (float(min(values)), float(np.mean(values)), float(max(values)))

    def aggregate(self, judged_queries: Sequence[JudgedQuery]) -> UserStudyOutcome:
        """Average ratings and kappa statistics over all judged queries."""
        if not judged_queries:
            raise ValueError("no judged queries to aggregate")
        methods = sorted(judged_queries[0].representativeness)
        representativeness: Dict[str, float] = {}
        impact: Dict[str, float] = {}
        for method in methods:
            repr_ratings: List[int] = []
            impact_ratings: List[int] = []
            for judged in judged_queries:
                repr_ratings.extend(judged.representativeness.get(method, []))
                impact_ratings.extend(judged.impact.get(method, []))
            representativeness[method] = float(np.mean(repr_ratings)) if repr_ratings else 0.0
            impact[method] = float(np.mean(impact_ratings)) if impact_ratings else 0.0
        return UserStudyOutcome(
            representativeness=representativeness,
            impact=impact,
            representativeness_kappa=self._kappa_stats(judged_queries, "representativeness"),
            impact_kappa=self._kappa_stats(judged_queries, "impact"),
            num_queries=len(judged_queries),
            evaluators_per_query=self.evaluators_per_query,
        )
