"""Cohen's weighted kappa (linear weights).

The paper measures the agreement between user-study evaluators with Cohen's
linearly weighted kappa (Cohen, 1968) and reports per-aspect averages.  The
statistic compares two raters assigning ordinal categories to the same items:

``kappa_w = 1 − (Σ_ij w_ij · O_ij) / (Σ_ij w_ij · E_ij)``

with observed matrix ``O``, expected-by-chance matrix ``E`` (outer product of
the raters' marginals) and linear disagreement weights
``w_ij = |i − j| / (C − 1)``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def cohen_weighted_kappa(
    ratings_a: Sequence[int],
    ratings_b: Sequence[int],
    num_categories: int = 5,
) -> float:
    """Linearly weighted Cohen's kappa between two raters.

    Ratings are integer categories in ``1..num_categories``.  Perfect
    agreement returns 1.0; chance-level agreement returns 0.0.  When both
    raters are constant and identical the statistic is defined as 1.0.
    """
    a = np.asarray(ratings_a, dtype=int)
    b = np.asarray(ratings_b, dtype=int)
    if a.shape != b.shape:
        raise ValueError("rating sequences must have equal length")
    if a.size == 0:
        raise ValueError("rating sequences must be non-empty")
    if num_categories < 2:
        raise ValueError("num_categories must be at least 2")
    if np.any(a < 1) or np.any(a > num_categories) or np.any(b < 1) or np.any(b > num_categories):
        raise ValueError("ratings must lie in 1..num_categories")

    categories = num_categories
    observed = np.zeros((categories, categories))
    for left, right in zip(a, b):
        observed[left - 1, right - 1] += 1
    observed /= observed.sum()

    marginal_a = observed.sum(axis=1)
    marginal_b = observed.sum(axis=0)
    expected = np.outer(marginal_a, marginal_b)

    indices = np.arange(categories)
    weights = np.abs(indices[:, None] - indices[None, :]) / (categories - 1)

    expected_disagreement = float((weights * expected).sum())
    observed_disagreement = float((weights * observed).sum())
    if expected_disagreement == 0.0:
        # Both raters used a single identical category for every item.
        return 1.0 if observed_disagreement == 0.0 else 0.0
    return 1.0 - observed_disagreement / expected_disagreement
