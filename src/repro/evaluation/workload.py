"""k-SIR query workload generation (Section 5.1 of the paper).

The paper generates 10 K queries per dataset: each query draws 1–5 words
from the vocabulary, infers the query vector by treating the keywords as a
pseudo-document, and is assigned a random timestamp in the stream's time
range.  :class:`WorkloadGenerator` reproduces that procedure with two keyword
sampling modes:

* ``"frequency"`` (default) — keywords are drawn proportionally to their
  corpus frequency, which is what drawing from a real query log looks like;
* ``"topical"`` — a random topic is drawn first and keywords come from its
  top words (used by the user-study queries, which target trending topics);
* ``"uniform"`` — uniform draws over the vocabulary (the paper's literal
  procedure).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.query import KSIRQuery
from repro.datasets.synthetic import SyntheticDataset
from repro.topics.inference import TopicInferencer
from repro.utils.rng import SeedLike, make_rng


@dataclass
class QueryWorkload:
    """A generated query workload, ordered by query timestamp."""

    queries: List[KSIRQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[KSIRQuery]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> KSIRQuery:
        return self.queries[index]

    def sorted_by_time(self) -> "QueryWorkload":
        """A copy with queries sorted by their timestamps."""
        ordered = sorted(self.queries, key=lambda query: (query.time or 0))
        return QueryWorkload(ordered)

    def queries_between(self, start: int, end: int) -> List[KSIRQuery]:
        """Queries whose timestamp falls in ``[start, end]``."""
        return [
            query
            for query in self.queries
            if query.time is not None and start <= query.time <= end
        ]


class WorkloadGenerator:
    """Generates k-SIR query workloads against a synthetic dataset."""

    def __init__(
        self,
        dataset: SyntheticDataset,
        k: int = 10,
        min_keywords: int = 1,
        max_keywords: int = 5,
        mode: str = "frequency",
        seed: SeedLike = None,
        inferencer: Optional[TopicInferencer] = None,
    ) -> None:
        if mode not in ("frequency", "topical", "uniform"):
            raise ValueError("mode must be 'frequency', 'topical' or 'uniform'")
        if min_keywords < 1 or max_keywords < min_keywords:
            raise ValueError("need 1 <= min_keywords <= max_keywords")
        self.dataset = dataset
        self.k = int(k)
        self.min_keywords = int(min_keywords)
        self.max_keywords = int(max_keywords)
        self.mode = mode
        self._rng = make_rng(seed)
        self._inferencer = inferencer or dataset.inferencer
        self._word_pool, self._word_weights = self._build_word_pool()

    def _build_word_pool(self) -> Tuple[List[str], np.ndarray]:
        counts: Counter = Counter()
        for element in self.dataset.stream:
            counts.update(element.tokens)
        words = sorted(counts)
        if not words:
            raise ValueError("the dataset stream has no tokens to draw keywords from")
        weights = np.array([counts[word] for word in words], dtype=float)
        weights /= weights.sum()
        return words, weights

    # -- keyword sampling --------------------------------------------------------------

    def sample_keywords(self) -> Tuple[str, ...]:
        """Draw one query's keywords according to the configured mode."""
        count = int(self._rng.integers(self.min_keywords, self.max_keywords + 1))
        if self.mode == "topical":
            topic = int(self._rng.integers(0, self.dataset.topic_model.num_topics))
            top_words = self.dataset.topical_keywords(topic, count=max(count, 5))
            chosen = self._rng.choice(len(top_words), size=min(count, len(top_words)), replace=False)
            return tuple(top_words[int(i)] for i in chosen)
        if self.mode == "uniform":
            indices = self._rng.choice(len(self._word_pool), size=count, replace=False)
        else:
            indices = self._rng.choice(
                len(self._word_pool), size=count, replace=False, p=self._word_weights
            )
        return tuple(self._word_pool[int(i)] for i in indices)

    # -- workload generation -------------------------------------------------------------

    def generate_query(self, time: Optional[int] = None) -> KSIRQuery:
        """One query: sampled keywords, inferred vector, given/random timestamp."""
        keywords = self.sample_keywords()
        vector = self._inferencer.infer(list(keywords))
        if time is None:
            start = self.dataset.stream.start_time
            end = self.dataset.stream.end_time
            time = int(self._rng.integers(start, end + 1))
        return KSIRQuery(k=self.k, vector=vector, time=time, keywords=keywords)

    def generate(self, num_queries: int, times: Optional[Sequence[int]] = None) -> QueryWorkload:
        """A workload of ``num_queries`` queries (optionally at fixed times)."""
        if num_queries <= 0:
            raise ValueError("num_queries must be positive")
        if times is not None and len(times) != num_queries:
            raise ValueError("times must have exactly num_queries entries")
        queries = [
            self.generate_query(time=None if times is None else int(times[i]))
            for i in range(num_queries)
        ]
        return QueryWorkload(queries).sorted_by_time()
