"""The versioned on-disk checkpoint format of :class:`~repro.api.engine.KSIREngine`.

A checkpoint is a directory:

* ``MANIFEST.json`` — format marker, format version, the engine
  configuration (:meth:`~repro.api.config.EngineConfig.to_dict`), the
  backend name and the library version that wrote it;
* ``topic_model.npz`` — the topic-model oracle (reloadable via
  :meth:`~repro.topics.model.MatrixTopicModel.load`);
* ``state.json`` — the execution backend's ``state_dict``: active window
  (elements included), ranked lists verbatim, stream counters, and — for
  service engines — the standing-query registry and cached results;
* ``state_arrays.npz`` (format v2, columnar state store) — the store's
  numeric state columns (id vectors, activity pairs, follower CSR slices,
  ranked-list score arrays) as raw NumPy arrays.

**Format v2.**  A v1 checkpoint serialises every tuple through JSON.  The
columnar state store instead emits its numeric state as arrays inside the
``state_dict``; the writer extracts every array leaf into
``state_arrays.npz`` (uncompressed, so each member is the raw ``.npy``
buffer) and leaves a ``{"__ndarray__": key}`` reference in ``state.json``.
The reader maps the references back onto the npz members, materialising
each array straight from its buffer — no JSON number parsing on the hot
restore path.  v1 checkpoints (pure JSON) remain fully loadable: the
layer-wise ``restore_state`` implementations accept both shapes through
:mod:`repro.store.codec`.

The manifest is validated before any state is touched: an unknown format
marker or a newer format version fails with a clear error instead of a
half-restored engine.  This module only knows about files; constructing
the restored engine lives in :meth:`KSIREngine.load`, which keeps the two
modules import-cycle-free.
"""

from __future__ import annotations

import json
import os
import zipfile
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.api.config import EngineConfig
from repro.topics.model import MatrixTopicModel, TopicModel

#: Format marker stored in every manifest.
CHECKPOINT_FORMAT = "ksir-engine-checkpoint"

#: Current checkpoint format version.  Readers accept any version up to
#: this one; writers always emit the current version.
CHECKPOINT_VERSION = 2

MANIFEST_FILE = "MANIFEST.json"
MODEL_FILE = "topic_model.npz"
STATE_FILE = "state.json"
ARRAYS_FILE = "state_arrays.npz"

#: JSON marker referencing a member of ``state_arrays.npz``.
ARRAY_REF_KEY = "__ndarray__"


class CheckpointError(RuntimeError):
    """A checkpoint directory is missing, malformed or incompatible."""


@dataclass(frozen=True)
class CheckpointPayload:
    """Everything read back from a checkpoint directory."""

    version: int
    backend: str
    config: EngineConfig
    topic_model: MatrixTopicModel
    state: Dict[str, Any]
    library_version: str


def _json_default(value: object) -> object:
    """Coerce numpy scalars that may hide inside state dictionaries."""
    item = getattr(value, "item", None)
    if callable(item):
        coerced: object = item()
        return coerced
    raise TypeError(f"{type(value).__name__} is not JSON serialisable")


def _extract_arrays(
    node: Any, arrays: Dict[str, "np.ndarray"], path: str
) -> Any:
    """Replace every array leaf with an npz reference, collecting arrays.

    Keys are derived from the state-dict path (slashes joined), which
    keeps the npz members self-describing for debugging.
    """
    if isinstance(node, np.ndarray):
        key = f"a{len(arrays)}:{path}"
        arrays[key] = node
        return {ARRAY_REF_KEY: key}
    if isinstance(node, dict):
        return {
            str(key): _extract_arrays(value, arrays, f"{path}/{key}")
            for key, value in node.items()
        }
    if isinstance(node, (list, tuple)):
        return [
            _extract_arrays(value, arrays, f"{path}/{index}")
            for index, value in enumerate(node)
        ]
    return node


def _inflate_arrays(node: Any, arrays: "np.lib.npyio.NpzFile") -> Any:
    """Inverse of :func:`_extract_arrays`: resolve npz references."""
    if isinstance(node, dict):
        if set(node.keys()) == {ARRAY_REF_KEY}:
            return arrays[str(node[ARRAY_REF_KEY])]
        return {key: _inflate_arrays(value, arrays) for key, value in node.items()}
    if isinstance(node, list):
        return [_inflate_arrays(value, arrays) for value in node]
    return node


def _contains_array_refs(node: Any) -> bool:
    """Whether a state tree still holds unresolved ``state_arrays.npz`` refs."""
    if isinstance(node, dict):
        if set(node.keys()) == {ARRAY_REF_KEY}:
            return True
        return any(_contains_array_refs(value) for value in node.values())
    if isinstance(node, list):
        return any(_contains_array_refs(value) for value in node)
    return False


def _library_version() -> str:
    try:  # Imported lazily: repro/__init__ imports this package.
        from repro import __version__

        return str(__version__)
    except Exception:  # pragma: no cover - only during partial imports
        return "unknown"


def write_checkpoint(
    path: Union[str, Path],
    backend_name: str,
    config: EngineConfig,
    topic_model: TopicModel,
    state: Dict[str, Any],
) -> Path:
    """Write a checkpoint directory; returns the directory path.

    Safe to overwrite an existing checkpoint in place (the single-writer
    case): any stale manifest is removed *before* the data files are
    rewritten, and the new manifest lands last via an atomic rename — so
    a crash mid-save leaves a directory that fails validation rather
    than one that validates against mismatched state.
    """
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = directory / MANIFEST_FILE
    # Invalidate any previous checkpoint at this path first: a torn
    # rewrite must never leave an old manifest validating new state.
    manifest_path.unlink(missing_ok=True)
    topic_model.save(directory / MODEL_FILE)
    arrays: Dict[str, "np.ndarray"] = {}
    state = _extract_arrays(state, arrays, "")
    arrays_path = directory / ARRAYS_FILE
    if arrays:
        np.savez(arrays_path, **arrays)
    else:
        # A previous columnar checkpoint at this path must not leave a
        # stale arrays member behind an object-store rewrite.
        arrays_path.unlink(missing_ok=True)
    with open(directory / STATE_FILE, "w", encoding="utf-8") as handle:
        json.dump(state, handle, default=_json_default)
    manifest = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "backend": backend_name,
        "config": config.to_dict(),
        "library_version": _library_version(),
    }
    scratch = directory / (MANIFEST_FILE + ".tmp")
    with open(scratch, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    os.replace(scratch, manifest_path)
    return directory


def read_checkpoint(path: Union[str, Path]) -> CheckpointPayload:
    """Read and validate a checkpoint directory."""
    directory = Path(path)
    manifest_path = directory / MANIFEST_FILE
    if not manifest_path.exists():
        raise CheckpointError(
            f"{directory} is not a k-SIR checkpoint (missing {MANIFEST_FILE})"
        )
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except json.JSONDecodeError as error:
        raise CheckpointError(f"{manifest_path} is corrupt: {error}") from error
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{directory} has format marker {manifest.get('format')!r}, "
            f"expected {CHECKPOINT_FORMAT!r}"
        )
    version = int(manifest.get("version", 0))
    if not 1 <= version <= CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint format version {version} is not supported "
            f"(this library reads versions 1..{CHECKPOINT_VERSION})"
        )
    for required in (MODEL_FILE, STATE_FILE):
        if not (directory / required).exists():
            raise CheckpointError(f"{directory} is missing {required}")
    config = EngineConfig.from_dict(manifest["config"])
    topic_model = MatrixTopicModel.load(directory / MODEL_FILE)
    try:
        with open(directory / STATE_FILE, "r", encoding="utf-8") as handle:
            state = json.load(handle)
    except json.JSONDecodeError as error:
        raise CheckpointError(
            f"{directory / STATE_FILE} is corrupt: {error}"
        ) from error
    arrays_path = directory / ARRAYS_FILE
    if arrays_path.exists():
        try:
            with np.load(arrays_path, allow_pickle=False) as arrays:
                state = _inflate_arrays(state, arrays)
        except (
            ValueError,
            KeyError,
            OSError,
            EOFError,
            zipfile.BadZipFile,
            zlib.error,
        ) as error:
            raise CheckpointError(f"{arrays_path} is corrupt: {error}") from error
    elif _contains_array_refs(state):
        # A columnar checkpoint whose npz member vanished (partial copy,
        # torn rsync) must fail loudly here, not with a KeyError when the
        # first unresolved reference reaches a restore_state.
        raise CheckpointError(
            f"{directory} is missing {ARRAYS_FILE} but {STATE_FILE} references "
            "array members; the checkpoint is incomplete"
        )
    return CheckpointPayload(
        version=version,
        backend=str(manifest["backend"]),
        config=config,
        topic_model=topic_model,
        state=state,
        library_version=str(manifest.get("library_version", "unknown")),
    )
