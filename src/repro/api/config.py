"""The composable engine configuration of the :mod:`repro.api` facade.

One :class:`EngineConfig` describes a complete k-SIR deployment: the
stream-processor parameters (window, bucket, scoring), the optional
sharding layer, the standing-query serving options, the topic-inference
settings and the execution-backend name.  It round-trips losslessly
through plain dictionaries (:meth:`EngineConfig.to_dict` /
:meth:`EngineConfig.from_dict`), which is what the checkpoint format and
any JSON/YAML deployment description use, and it can be assembled from an
``argparse`` namespace (:meth:`EngineConfig.from_args`) so every CLI
subcommand shares one backend-wiring path instead of re-implementing it.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.cluster.coordinator import (
    BACKEND_CHOICES,
    TRANSPORT_CHOICES,
    ClusterConfig,
)
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.core.window_policy import WINDOW_POLICY_CHOICES
from repro.ha.config import HAConfig
from repro.kernels import KERNEL_CHOICES
from repro.store import STORE_CHOICES
from repro.streams.config import StreamConfig
from repro.topics.inference import TopicInferencer
from repro.topics.model import TopicModel

#: Canonical execution-backend names (the adapter registry keys).
LOCAL_BACKEND = "local"
SHARDED_BACKEND = "sharded"
SERVICE_BACKEND = "service"

#: Accepted spellings → canonical backend names (CLI compatibility).
BACKEND_ALIASES: Dict[str, str] = {
    LOCAL_BACKEND: LOCAL_BACKEND,
    "single": LOCAL_BACKEND,
    "processor": LOCAL_BACKEND,
    SHARDED_BACKEND: SHARDED_BACKEND,
    "cluster": SHARDED_BACKEND,
    SERVICE_BACKEND: SERVICE_BACKEND,
    "serve": SERVICE_BACKEND,
}


def canonical_backend_name(name: str) -> str:
    """Resolve a backend spelling to its canonical registry name."""
    key = name.strip().lower()
    try:
        return BACKEND_ALIASES[key]
    except KeyError as error:
        available = ", ".join(sorted(set(BACKEND_ALIASES.values())))
        raise ValueError(
            f"unknown execution backend {name!r}; available: {available}"
        ) from error


def _check_known_keys(payload: Mapping[str, Any], known: Tuple[str, ...], where: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise ValueError(f"unknown {where} keys in config dict: {', '.join(unknown)}")


@dataclass(frozen=True)
class InferenceConfig:
    """Topic-inference settings, shared by ingest and query-by-keyword.

    Mirrors the :class:`~repro.topics.inference.TopicInferencer` options
    (minus the model and the RNG seed, which are runtime objects).  Keeping
    them in the engine config ends the historical drift where different
    entry points hard-coded different inferencer parameters: every surface
    now builds its inferencer through :meth:`build`.
    """

    alpha: Optional[float] = None
    iterations: int = 30
    method: str = "expectation"
    sparsity_threshold: float = 0.0

    def __post_init__(self) -> None:
        if self.method not in ("expectation", "gibbs"):
            raise ValueError("method must be 'expectation' or 'gibbs'")
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if not (0.0 <= self.sparsity_threshold < 1.0):
            raise ValueError("sparsity_threshold must lie in [0, 1)")

    def build(self, model: TopicModel) -> TopicInferencer:
        """Instantiate a :class:`TopicInferencer` bound to ``model``."""
        return TopicInferencer(
            model,
            alpha=self.alpha,
            iterations=self.iterations,
            method=self.method,
            sparsity_threshold=self.sparsity_threshold,
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dictionary; inverse of :meth:`from_dict`."""
        return {
            "alpha": self.alpha,
            "iterations": self.iterations,
            "method": self.method,
            "sparsity_threshold": self.sparsity_threshold,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InferenceConfig":
        """Inverse of :meth:`to_dict` (unknown keys raise ``ValueError``)."""
        _check_known_keys(
            payload, ("alpha", "iterations", "method", "sparsity_threshold"), "inference"
        )
        alpha = payload.get("alpha")
        return cls(
            alpha=None if alpha is None else float(alpha),
            iterations=int(payload.get("iterations", 30)),
            method=str(payload.get("method", "expectation")),
            sparsity_threshold=float(payload.get("sparsity_threshold", 0.0)),
        )


#: The inference settings every dataset-backed CLI path historically used
#: (weak prior + light sparsification, so keyword queries stay topical).
QUERY_INFERENCE = InferenceConfig(alpha=0.05, sparsity_threshold=0.05)


@dataclass(frozen=True)
class ServiceConfig:
    """Standing-query serving options of the ``service`` backend."""

    max_workers: int = 4
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dictionary; inverse of :meth:`from_dict`."""
        return {"max_workers": self.max_workers, "incremental": self.incremental}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServiceConfig":
        """Inverse of :meth:`to_dict` (unknown keys raise ``ValueError``)."""
        _check_known_keys(payload, ("max_workers", "incremental"), "service")
        return cls(
            max_workers=int(payload.get("max_workers", 4)),
            incremental=bool(payload.get("incremental", True)),
        )


@dataclass(frozen=True)
class KernelConfig:
    """Hot-path kernel selection (see :mod:`repro.kernels`).

    ``mode`` is ``"auto"`` (compile with Numba when importable, silently
    fall back to the NumPy reference otherwise — the default, zero hard
    dependencies), ``"numba"`` (require the compiled path) or
    ``"numpy"`` (force the reference implementations).  Selection is
    process-wide: the backend factory applies it once per engine
    construction via :func:`repro.kernels.configure_kernels`.
    """

    mode: str = "auto"

    def __post_init__(self) -> None:
        if self.mode not in KERNEL_CHOICES:
            available = ", ".join(KERNEL_CHOICES)
            raise ValueError(
                f"unknown kernel mode {self.mode!r}; available: {available}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dictionary; inverse of :meth:`from_dict`."""
        return {"mode": self.mode}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "KernelConfig":
        """Inverse of :meth:`to_dict` (unknown keys raise ``ValueError``)."""
        _check_known_keys(payload, ("mode",), "kernels")
        return cls(mode=str(payload.get("mode", "auto")))


def _scoring_to_dict(scoring: ScoringConfig) -> Dict[str, Any]:
    return {
        "lambda_weight": scoring.lambda_weight,
        "eta": scoring.eta,
        "topic_threshold": scoring.topic_threshold,
    }


def _scoring_from_dict(payload: Mapping[str, Any]) -> ScoringConfig:
    _check_known_keys(payload, ("lambda_weight", "eta", "topic_threshold"), "scoring")
    defaults = ScoringConfig()
    return ScoringConfig(
        lambda_weight=float(payload.get("lambda_weight", defaults.lambda_weight)),
        eta=float(payload.get("eta", defaults.eta)),
        topic_threshold=float(payload.get("topic_threshold", defaults.topic_threshold)),
    )


def _processor_to_dict(config: ProcessorConfig) -> Dict[str, Any]:
    return {
        "window_length": config.window_length,
        "bucket_length": config.bucket_length,
        "scoring": _scoring_to_dict(config.scoring),
        "default_algorithm": config.default_algorithm,
        "default_epsilon": config.default_epsilon,
        "batched_ingest": config.batched_ingest,
        "store": config.store,
        "archive_windows": config.archive_windows,
        "window_policy": config.window_policy,
        "session_gap": config.session_gap,
    }


def _processor_from_dict(payload: Mapping[str, Any]) -> ProcessorConfig:
    _check_known_keys(
        payload,
        (
            "window_length",
            "bucket_length",
            "scoring",
            "default_algorithm",
            "default_epsilon",
            "batched_ingest",
            "store",
            "archive_windows",
            "window_policy",
            "session_gap",
        ),
        "processor",
    )
    defaults = ProcessorConfig()
    session_gap = payload.get("session_gap")
    return ProcessorConfig(
        window_length=int(payload.get("window_length", defaults.window_length)),
        bucket_length=int(payload.get("bucket_length", defaults.bucket_length)),
        scoring=_scoring_from_dict(payload.get("scoring", {})),
        default_algorithm=str(
            payload.get("default_algorithm", defaults.default_algorithm)
        ),
        default_epsilon=float(payload.get("default_epsilon", defaults.default_epsilon)),
        batched_ingest=bool(payload.get("batched_ingest", defaults.batched_ingest)),
        store=str(payload.get("store", defaults.store)),
        archive_windows=int(payload.get("archive_windows", defaults.archive_windows)),
        window_policy=str(payload.get("window_policy", defaults.window_policy)),
        session_gap=None if session_gap is None else int(session_gap),
    )


def _cluster_to_dict(config: ClusterConfig) -> Dict[str, Any]:
    return {
        "num_shards": config.num_shards,
        "partitioner": config.partitioner,
        "backend": config.backend,
        "transport": config.transport,
        "candidate_budget": config.candidate_budget,
        "budget_scale": config.budget_scale,
        "max_workers": config.max_workers,
    }


def _cluster_from_dict(payload: Mapping[str, Any]) -> ClusterConfig:
    _check_known_keys(
        payload,
        (
            "num_shards",
            "partitioner",
            "backend",
            "transport",
            "candidate_budget",
            "budget_scale",
            "max_workers",
        ),
        "cluster",
    )
    defaults = ClusterConfig()
    candidate_budget = payload.get("candidate_budget")
    max_workers = payload.get("max_workers")
    transport = payload.get("transport")
    return ClusterConfig(
        num_shards=int(payload.get("num_shards", defaults.num_shards)),
        partitioner=str(payload.get("partitioner", defaults.partitioner)),
        backend=str(payload.get("backend", defaults.backend)),
        transport=None if transport is None else str(transport),
        candidate_budget=None if candidate_budget is None else int(candidate_budget),
        budget_scale=float(payload.get("budget_scale", defaults.budget_scale)),
        max_workers=None if max_workers is None else int(max_workers),
    )


@dataclass(frozen=True)
class EngineConfig:
    """One composable description of a complete k-SIR engine.

    Parameters
    ----------
    backend:
        Execution-backend name: ``"local"`` (one processor), ``"sharded"``
        (a cluster coordinator) or ``"service"`` (a standing-query serving
        engine over either substrate).  CLI spellings ``"single"`` and
        ``"cluster"`` are accepted as aliases.
    processor:
        The per-node stream-processor configuration (window, bucket,
        scoring, ingest path, defaults).
    cluster:
        The sharding configuration; ``None`` keeps single-node execution.
        A ``service`` backend with a cluster config serves its standing
        queries over the shards.
    service:
        Standing-query serving options (thread pool, incremental vs naive
        maintenance); only the ``service`` backend reads them.
    inference:
        Topic-inference settings applied to both ingest and keyword
        queries; ``None`` uses the inferencer defaults (``α = 50/z``,
        dense posteriors).
    ha:
        Supervision tuning (heartbeats, checkpoint cadence, bucket WAL)
        consumed by :class:`~repro.ha.supervisor.ClusterSupervisor`;
        ``None`` means supervisor defaults.  The engine itself ignores
        this section — it only travels with the configuration.
    streams:
        Event-time ingestion tuning (default source, allowed lateness,
        window policy) consumed by :meth:`~repro.api.engine.KSIREngine.ingest`;
        ``None`` means in-order defaults.  A non-sliding window policy
        named here is mirrored into the processor section (which is what
        shard workers receive), so the two spellings cannot drift.
    kernels:
        Hot-path kernel selection (``auto``/``numba``/``numpy``), applied
        process-wide when a backend is constructed; see
        :mod:`repro.kernels`.
    """

    backend: str = LOCAL_BACKEND
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    cluster: Optional[ClusterConfig] = None
    service: ServiceConfig = field(default_factory=ServiceConfig)
    inference: Optional[InferenceConfig] = None
    ha: Optional[HAConfig] = None
    streams: Optional[StreamConfig] = None
    kernels: KernelConfig = field(default_factory=KernelConfig)

    def __post_init__(self) -> None:
        object.__setattr__(self, "backend", canonical_backend_name(self.backend))
        if self.backend == SHARDED_BACKEND and self.cluster is None:
            object.__setattr__(self, "cluster", ClusterConfig())
        streams = self.streams
        if streams is not None and (
            streams.window_policy != "sliding" or streams.session_gap is not None
        ):
            processor = self.processor
            if processor.window_policy == "sliding" and processor.session_gap is None:
                object.__setattr__(
                    self,
                    "processor",
                    replace(
                        processor,
                        window_policy=streams.window_policy,
                        session_gap=streams.session_gap,
                    ),
                )
            elif (
                processor.window_policy != streams.window_policy
                or processor.session_gap != streams.session_gap
            ):
                raise ValueError(
                    "the processor and streams sections name different window "
                    f"policies ({processor.window_policy!r} vs "
                    f"{streams.window_policy!r}); configure the policy once"
                )

    # -- derived views -----------------------------------------------------------------

    @property
    def is_sharded(self) -> bool:
        """Whether execution runs over shard partitions."""
        return self.cluster is not None and self.backend != LOCAL_BACKEND

    def build_inferencer(self, model: TopicModel) -> Optional[TopicInferencer]:
        """The configured inferencer, or ``None`` for the library default."""
        if self.inference is None:
            return None
        return self.inference.build(model)

    def with_backend(self, backend: str) -> "EngineConfig":
        """A copy of this configuration running on a different backend."""
        return replace(self, backend=canonical_backend_name(backend))

    # -- dict round-trip ---------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable dictionary; inverse of :meth:`from_dict`."""
        return {
            "backend": self.backend,
            "processor": _processor_to_dict(self.processor),
            "cluster": None if self.cluster is None else _cluster_to_dict(self.cluster),
            "service": self.service.to_dict(),
            "inference": None if self.inference is None else self.inference.to_dict(),
            "ha": None if self.ha is None else self.ha.to_dict(),
            "streams": None if self.streams is None else self.streams.to_dict(),
            "kernels": self.kernels.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EngineConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Missing sections fall back to their defaults; unknown keys raise
        ``ValueError`` so typos in deployment files fail loudly.
        """
        _check_known_keys(
            payload,
            (
                "backend",
                "processor",
                "cluster",
                "service",
                "inference",
                "ha",
                "streams",
                "kernels",
            ),
            "engine",
        )
        cluster = payload.get("cluster")
        inference = payload.get("inference")
        ha = payload.get("ha")
        streams = payload.get("streams")
        return cls(
            backend=str(payload.get("backend", LOCAL_BACKEND)),
            processor=_processor_from_dict(payload.get("processor", {})),
            cluster=None if cluster is None else _cluster_from_dict(cluster),
            service=ServiceConfig.from_dict(payload.get("service", {})),
            inference=None if inference is None else InferenceConfig.from_dict(inference),
            ha=None if ha is None else HAConfig.from_dict(ha),
            streams=None if streams is None else StreamConfig.from_dict(streams),
            kernels=KernelConfig.from_dict(payload.get("kernels", {})),
        )

    # -- argparse integration ----------------------------------------------------------

    @staticmethod
    def add_arguments(
        parser: argparse.ArgumentParser, service: bool = False
    ) -> None:
        """Install the shared engine options on an ``argparse`` parser.

        Adds the execution-layer flags (``--backend``, ``--shards``,
        ``--partitioner``, ``--fanout``, ``--transport``), the processor flags
        (``--window-hours``, ``--bucket-minutes``, ``--lambda-weight``,
        ``--eta``), the event-time ingest flags (``--source``,
        ``--allowed-lateness``, ``--window-policy``, ``--session-gap``)
        and the kernel-backend flag (``--kernels``).
        With ``service=True`` the serving flags
        (``--workers``, ``--naive``) are added too.  The single source of
        truth consumed by :meth:`from_args`.
        """
        parser.add_argument(
            "--backend",
            default="single",
            choices=["single", "cluster"],
            help="execution backend: one processor or a sharded cluster",
        )
        parser.add_argument(
            "--shards",
            type=int,
            default=4,
            help="number of shards (cluster backend only)",
        )
        parser.add_argument(
            "--partitioner",
            default="hash",
            choices=["hash", "round-robin", "load-balanced"],
            help="element partitioning strategy (cluster backend only)",
        )
        parser.add_argument(
            "--fanout",
            default="thread",
            choices=list(BACKEND_CHOICES),
            help="cluster fan-out executor (thread pool, serial, or one "
            "process per shard)",
        )
        parser.add_argument(
            "--transport",
            default=None,
            choices=list(TRANSPORT_CHOICES),
            help="cluster transport backend; overrides --fanout "
            "(shm = shared-memory columns, zero-copy candidate pools)",
        )
        parser.add_argument("--window-hours", type=int, default=24)
        parser.add_argument("--bucket-minutes", type=int, default=15)
        parser.add_argument("--lambda-weight", type=float, default=0.5)
        parser.add_argument("--eta", type=float, default=1.5)
        parser.add_argument(
            "--store",
            default="columnar",
            choices=list(STORE_CHOICES),
            help="window state representation: contiguous NumPy arrays "
            "(default) or the legacy per-element objects",
        )
        parser.add_argument(
            "--archive-windows",
            type=int,
            default=8,
            help="archive retention horizon in window lengths",
        )
        parser.add_argument(
            "--source",
            default="memory",
            help="default stream source name for raw-event ingest "
            "(memory, jsonl, citations, entities, or a registered name)",
        )
        parser.add_argument(
            "--allowed-lateness",
            type=int,
            default=0,
            help="out-of-order tolerance of raw-event ingest, in bucket "
            "units (0 = require in-order arrival)",
        )
        parser.add_argument(
            "--window-policy",
            default="sliding",
            choices=list(WINDOW_POLICY_CHOICES),
            help="window shape driving expiry: the paper's sliding window "
            "(default), epoch-aligned tumbling spans, or gap-based sessions",
        )
        parser.add_argument(
            "--session-gap",
            type=int,
            default=None,
            help="session-window gap in stream time units "
            "(required by --window-policy session)",
        )
        parser.add_argument(
            "--kernels",
            default="auto",
            choices=list(KERNEL_CHOICES),
            help="hot-path kernel backend: compile with Numba when "
            "importable (auto, the default), require the compiled path "
            "(numba), or force the NumPy reference (numpy)",
        )
        if service:
            parser.add_argument(
                "--workers", type=int, default=4, help="evaluator thread-pool size"
            )
            parser.add_argument(
                "--naive",
                action="store_true",
                help="re-run every standing query on every bucket "
                "(disables incremental maintenance)",
            )

    @classmethod
    def from_args(
        cls,
        args: argparse.Namespace,
        service: bool = False,
        inference: Optional[InferenceConfig] = QUERY_INFERENCE,
    ) -> "EngineConfig":
        """Build a configuration from parsed :meth:`add_arguments` options.

        ``service=True`` selects the ``service`` execution backend (over a
        cluster when ``--backend cluster`` was given).  ``inference``
        defaults to the dataset-backed CLI inference settings; pass
        ``None`` to keep the library-default inferencer.
        """
        processor = ProcessorConfig(
            window_length=int(getattr(args, "window_hours", 24)) * 3600,
            bucket_length=int(getattr(args, "bucket_minutes", 15)) * 60,
            scoring=ScoringConfig(
                lambda_weight=float(getattr(args, "lambda_weight", 0.5)),
                eta=float(getattr(args, "eta", 1.5)),
            ),
            store=str(getattr(args, "store", "columnar")),
            archive_windows=int(getattr(args, "archive_windows", 8)),
        )
        cluster: Optional[ClusterConfig] = None
        backend = canonical_backend_name(str(getattr(args, "backend", "single")))
        if backend == SHARDED_BACKEND:
            transport = getattr(args, "transport", None)
            cluster = ClusterConfig(
                num_shards=int(getattr(args, "shards", 4)),
                partitioner=str(getattr(args, "partitioner", "hash")),
                backend=str(getattr(args, "fanout", "thread")),
                transport=None if transport is None else str(transport),
            )
        if service:
            backend = SERVICE_BACKEND
        session_gap = getattr(args, "session_gap", None)
        streams = StreamConfig(
            source=str(getattr(args, "source", "memory")),
            allowed_lateness=int(getattr(args, "allowed_lateness", 0)),
            window_policy=str(getattr(args, "window_policy", "sliding")),
            session_gap=None if session_gap is None else int(session_gap),
        )
        return cls(
            backend=backend,
            processor=processor,
            cluster=cluster,
            service=ServiceConfig(
                max_workers=int(getattr(args, "workers", 4)),
                incremental=not bool(getattr(args, "naive", False)),
            ),
            inference=inference,
            streams=streams,
            kernels=KernelConfig(mode=str(getattr(args, "kernels", "auto"))),
        )
