"""The built-in execution-backend adapters: local, sharded and service.

Each adapter wraps one of the historical entry surfaces —
:class:`~repro.core.processor.KSIRProcessor`,
:class:`~repro.cluster.coordinator.ClusterCoordinator`,
:class:`~repro.service.engine.ServiceEngine` — behind the uniform
:class:`~repro.api.backend.ExecutionBackend` protocol, and importing this
module registers all three factories.  The wrapped objects remain fully
reachable (``backend.processor`` / ``backend.coordinator`` /
``backend.engine``) for code that needs layer-specific surface such as
ranked-list inspection or per-shard statistics.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Union

from repro.api.backend import (
    AlgorithmLike,
    QueryLike,
    register_backend,
)
from repro.api.config import (
    LOCAL_BACKEND,
    SERVICE_BACKEND,
    SHARDED_BACKEND,
    EngineConfig,
)
from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.core.element import SocialElement
from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.query import QueryResult
from repro.core.scoring import ScoringContext
from repro.service.engine import ServiceEngine
from repro.topics.inference import TopicInferencer
from repro.topics.model import TopicModel
from repro.utils.deprecation import library_managed_construction


class LocalBackend:
    """Single-node execution: one :class:`KSIRProcessor` owns the window."""

    def __init__(
        self,
        topic_model: TopicModel,
        config: EngineConfig,
        inferencer: Optional[TopicInferencer] = None,
    ) -> None:
        with library_managed_construction():
            self._processor = KSIRProcessor(
                topic_model, config.processor, inferencer=inferencer
            )

    @property
    def name(self) -> str:
        """The backend's registry name."""
        return LOCAL_BACKEND

    @property
    def processor(self) -> KSIRProcessor:
        """The wrapped single-node processor."""
        return self._processor

    @property
    def topic_model(self) -> TopicModel:
        """The topic-model oracle in use."""
        return self._processor.topic_model

    @property
    def processor_config(self) -> ProcessorConfig:
        """The stream-processor configuration."""
        return self._processor.config

    @property
    def buckets_processed(self) -> int:
        """Buckets ingested so far."""
        return self._processor.buckets_processed

    @property
    def elements_processed(self) -> int:
        """Stream elements ingested so far."""
        return self._processor.elements_processed

    @property
    def active_count(self) -> int:
        """Number of currently active elements."""
        return self._processor.active_count

    @property
    def current_time(self) -> Optional[int]:
        """Stream time of the last ingested bucket."""
        return self._processor.current_time

    def ingest_bucket(
        self, elements: Sequence[SocialElement], end_time: int
    ) -> None:
        """Ingest one stream bucket."""
        self._processor.process_bucket(elements, end_time)

    def query(
        self,
        query: QueryLike,
        k: Optional[int] = None,
        algorithm: AlgorithmLike = None,
        epsilon: Optional[float] = None,
    ) -> QueryResult:
        """Answer an ad-hoc k-SIR query."""
        return self._processor.query(query, k, algorithm=algorithm, epsilon=epsilon)

    def snapshot(self) -> ScoringContext:
        """The processor's memoised per-bucket scoring snapshot."""
        return self._processor.snapshot()

    def stats(self) -> Dict[str, object]:
        """Single-node counters."""
        return {
            "backend": self.name,
            "elements_processed": self.elements_processed,
            "buckets_processed": self.buckets_processed,
            "active_count": self.active_count,
            "current_time": self.current_time,
            "ranked_tuples": self._processor.ranked_lists.total_tuples(),
        }

    def state_dict(self) -> Dict[str, object]:
        """Checkpoint state (delegates to the processor)."""
        return {"processor": self._processor.state_dict()}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self._processor.restore_state(state["processor"])

    def close(self) -> None:
        """Single-node execution holds no executor resources."""


class ShardedBackend:
    """Sharded execution: a :class:`ClusterCoordinator` over ``N`` workers."""

    def __init__(
        self,
        topic_model: TopicModel,
        config: EngineConfig,
        inferencer: Optional[TopicInferencer] = None,
    ) -> None:
        cluster = config.cluster if config.cluster is not None else ClusterConfig()
        # No construction guard needed: ClusterCoordinator is not a guarded
        # entry point, and the shard workers it builds wrap their own
        # processor constructions.
        self._coordinator = ClusterCoordinator(
            topic_model, config.processor, cluster=cluster, inferencer=inferencer
        )

    @property
    def name(self) -> str:
        """The backend's registry name."""
        return SHARDED_BACKEND

    @property
    def coordinator(self) -> ClusterCoordinator:
        """The wrapped cluster coordinator."""
        return self._coordinator

    @property
    def topic_model(self) -> TopicModel:
        """The topic-model oracle in use."""
        return self._coordinator.topic_model

    @property
    def processor_config(self) -> ProcessorConfig:
        """The per-shard stream-processor configuration."""
        return self._coordinator.config

    @property
    def buckets_processed(self) -> int:
        """Buckets ingested so far."""
        return self._coordinator.buckets_processed

    @property
    def elements_processed(self) -> int:
        """Stream elements ingested so far (before replication)."""
        return self._coordinator.elements_processed

    @property
    def active_count(self) -> int:
        """Active elements across the cluster."""
        return self._coordinator.active_count

    @property
    def current_time(self) -> Optional[int]:
        """Stream time of the last ingested bucket."""
        return self._coordinator.current_time

    def ingest_bucket(
        self, elements: Sequence[SocialElement], end_time: int
    ) -> None:
        """Route one bucket to the shards."""
        self._coordinator.process_bucket(elements, end_time)

    def query(
        self,
        query: QueryLike,
        k: Optional[int] = None,
        algorithm: AlgorithmLike = None,
        epsilon: Optional[float] = None,
    ) -> QueryResult:
        """Answer an ad-hoc k-SIR query by scatter-gather."""
        return self._coordinator.query(query, k, algorithm=algorithm, epsilon=epsilon)

    def snapshot(self) -> ScoringContext:
        """A merged scoring snapshot over every shard's home elements."""
        return self._coordinator.snapshot()

    def stats(self) -> Dict[str, object]:
        """Cluster counters, including per-shard accounting."""
        return {
            "backend": self.name,
            "elements_processed": self.elements_processed,
            "buckets_processed": self.buckets_processed,
            "active_count": self.active_count,
            "current_time": self.current_time,
            "num_shards": self._coordinator.num_shards,
            "shards": [
                {
                    "shard_id": stat.shard_id,
                    "home_elements": stat.home_elements,
                    "foreign_elements": stat.foreign_elements,
                    "active_home": stat.active_home,
                }
                for stat in self._coordinator.shard_stats()
            ],
        }

    def state_dict(self) -> Dict[str, object]:
        """Checkpoint state (delegates to the coordinator)."""
        return {"coordinator": self._coordinator.state_dict()}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self._coordinator.restore_state(state["coordinator"])

    def close(self) -> None:
        """Shut down the fan-out executor."""
        self._coordinator.close()


class ServiceBackend:
    """Standing-query serving over a local or sharded execution substrate."""

    def __init__(
        self,
        topic_model: TopicModel,
        config: EngineConfig,
        inferencer: Optional[TopicInferencer] = None,
    ) -> None:
        self._substrate: Union[KSIRProcessor, ClusterCoordinator]
        with library_managed_construction():
            if config.cluster is not None:
                self._substrate = ClusterCoordinator(
                    topic_model,
                    config.processor,
                    cluster=config.cluster,
                    inferencer=inferencer,
                )
            else:
                self._substrate = KSIRProcessor(
                    topic_model, config.processor, inferencer=inferencer
                )
            self._engine = ServiceEngine(
                self._substrate,
                max_workers=config.service.max_workers,
                incremental=config.service.incremental,
            )

    @property
    def name(self) -> str:
        """The backend's registry name."""
        return SERVICE_BACKEND

    @property
    def engine(self) -> ServiceEngine:
        """The wrapped standing-query serving engine."""
        return self._engine

    @property
    def topic_model(self) -> TopicModel:
        """The topic-model oracle in use."""
        return self._substrate.topic_model

    @property
    def processor_config(self) -> ProcessorConfig:
        """The stream-processor configuration of the substrate."""
        return self._substrate.config

    @property
    def buckets_processed(self) -> int:
        """Buckets ingested so far."""
        return self._substrate.buckets_processed

    @property
    def elements_processed(self) -> int:
        """Stream elements ingested so far."""
        return self._substrate.elements_processed

    @property
    def active_count(self) -> int:
        """Number of currently active elements."""
        return self._substrate.active_count

    @property
    def current_time(self) -> Optional[int]:
        """Stream time of the last ingested bucket."""
        return self._substrate.current_time

    def ingest_bucket(
        self, elements: Sequence[SocialElement], end_time: int
    ) -> None:
        """Ingest one bucket and maintain the affected standing queries."""
        self._engine.ingest_bucket(elements, end_time)

    def query(
        self,
        query: QueryLike,
        k: Optional[int] = None,
        algorithm: AlgorithmLike = None,
        epsilon: Optional[float] = None,
    ) -> QueryResult:
        """Answer an ad-hoc query against the serving substrate."""
        return self._substrate.query(query, k, algorithm=algorithm, epsilon=epsilon)

    def snapshot(self) -> ScoringContext:
        """A frozen scoring snapshot of the substrate's active window."""
        return self._substrate.snapshot()

    def stats(self) -> Dict[str, object]:
        """Serving counters (registry size plus maintenance metrics)."""
        metrics = self._engine.metrics
        return {
            "backend": self.name,
            "elements_processed": self.elements_processed,
            "buckets_processed": self.buckets_processed,
            "active_count": self.active_count,
            "current_time": self.current_time,
            "standing_queries": len(self._engine.registry),
            "evaluations": metrics.evaluations,
            "reused": metrics.reused,
            "incremental": self._engine.incremental,
            "sharded": self._engine.is_cluster,
        }

    def state_dict(self) -> Dict[str, object]:
        """Checkpoint state (substrate + registry + standing results)."""
        return {"service": self._engine.state_dict()}

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self._engine.restore_state(state["service"])

    def close(self) -> None:
        """Shut down the evaluator pool and the substrate, in that order."""
        self._engine.close()
        if isinstance(self._substrate, ClusterCoordinator):
            self._substrate.close()


# The adapter classes already satisfy the BackendFactory signature
# (topic_model, config, inferencer) -> ExecutionBackend.
register_backend(LOCAL_BACKEND, LocalBackend)
register_backend(SHARDED_BACKEND, ShardedBackend)
register_backend(SERVICE_BACKEND, ServiceBackend)
