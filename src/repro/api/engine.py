"""The unified :class:`KSIREngine` facade.

One typed entry point for every way of running k-SIR workloads: the
engine is built from a topic model plus one composable
:class:`~repro.api.config.EngineConfig` and delegates execution to the
:class:`~repro.api.backend.ExecutionBackend` adapter the config names —
single-node, sharded, or standing-query serving.  The facade adds the
cross-cutting surface every deployment needs regardless of backend:

* stream replay (:meth:`process_stream`) with the shared bucket
  semantics;
* ad-hoc queries by vector, :class:`~repro.core.query.KSIRQuery` or raw
  keywords (:meth:`query` / :meth:`query_keywords`);
* standing-query registration and result access when serving;
* engine lifecycle with **checkpoint/restore** — :meth:`save` persists
  the full execution state to a versioned on-disk format and
  :meth:`load` resumes ingest mid-stream on any backend (warm restarts,
  shard migration, blue/green deploys).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Union

from repro.api.backend import (
    AlgorithmLike,
    ExecutionBackend,
    QueryLike,
    create_backend,
)
from repro.api.backends import ServiceBackend
from repro.api.checkpoint import (
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.api.config import EngineConfig
from repro.core.element import SocialElement
from repro.core.query import KSIRQuery, QueryResult
from repro.core.scoring import ScoringContext
from repro.kernels import kernel_stats
from repro.core.stream import SocialStream, replay_stream
from repro.service.engine import ServiceEngine, StandingResult
from repro.service.registry import StandingQuery
from repro.streams import (
    StreamConfig,
    StreamIngestor,
    StreamMetrics,
    StreamSource,
    create_source,
)
from repro.topics.inference import TopicInferencer, infer_query_vector
from repro.topics.model import TopicModel


class KSIREngine:
    """The single public entry point of the k-SIR reproduction.

    >>> from repro.api import EngineConfig, KSIREngine
    >>> engine = KSIREngine(topic_model, EngineConfig(backend="local"))
    >>> engine.process_stream(stream)
    >>> engine.query_keywords(["music", "concert"], k=5)

    Construction wiring, backend dispatch and lifecycle live here; the
    actual execution semantics live behind the
    :class:`~repro.api.backend.ExecutionBackend` protocol, so swapping
    ``backend="local"`` for ``"sharded"`` or ``"service"`` changes no
    other line of user code.
    """

    def __init__(
        self,
        topic_model: TopicModel,
        config: Optional[EngineConfig] = None,
        inferencer: Optional[TopicInferencer] = None,
    ) -> None:
        self._config = config if config is not None else EngineConfig()
        self._model = topic_model
        if inferencer is None:
            inferencer = self._config.build_inferencer(topic_model)
        self._inferencer = inferencer
        self._backend = create_backend(
            self._config.backend, topic_model, self._config, inferencer
        )
        self._ingestor: Optional[StreamIngestor] = None
        self._closed = False

    # -- metadata ----------------------------------------------------------------------

    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend adapter in use."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """The canonical name of the execution backend."""
        return self._backend.name

    @property
    def topic_model(self) -> TopicModel:
        """The topic-model oracle."""
        return self._model

    @property
    def buckets_processed(self) -> int:
        """Buckets ingested so far."""
        return self._backend.buckets_processed

    @property
    def elements_processed(self) -> int:
        """Stream elements ingested so far."""
        return self._backend.elements_processed

    @property
    def active_count(self) -> int:
        """Number of currently active elements."""
        return self._backend.active_count

    @property
    def current_time(self) -> Optional[int]:
        """Stream time of the last ingested bucket."""
        return self._backend.current_time

    @property
    def service_engine(self) -> Optional[ServiceEngine]:
        """The standing-query engine (None unless serving)."""
        if isinstance(self._backend, ServiceBackend):
            return self._backend.engine
        return None

    # -- ingestion ---------------------------------------------------------------------

    def ingest_bucket(
        self, elements: Sequence[SocialElement], end_time: int
    ) -> None:
        """Ingest one stream bucket ending at ``end_time``."""
        self._require_open()
        self._backend.ingest_bucket(elements, end_time)

    def process_stream(
        self,
        stream: Union[SocialStream, Iterable[SocialElement]],
        until: Optional[int] = None,
    ) -> None:
        """Replay a whole stream (or until time ``until``) through the engine.

        On the ``service`` backend this maintains the registered standing
        queries bucket by bucket, exactly like the ad-hoc loop.
        """
        self._require_open()
        replay_stream(
            stream,
            self._backend.processor_config.bucket_length,
            self._backend.ingest_bucket,
            until,
        )

    # -- event-time ingest -------------------------------------------------------------

    def _stream_ingestor(self) -> StreamIngestor:
        if self._ingestor is None:
            streams = self._config.streams
            if streams is None:
                streams = StreamConfig()
            self._ingestor = StreamIngestor(
                self._backend.ingest_bucket,
                self._backend.processor_config.bucket_length,
                allowed_lateness=streams.allowed_lateness,
            )
        return self._ingestor

    def ingest(self, events: Iterable[SocialElement]) -> int:
        """Accept raw, possibly out-of-order events.

        Events flow through the engine's :class:`~repro.streams.StreamIngestor`
        — the bounded reordering buffer configured by the ``streams``
        config section — which re-sorts each element into its true bucket
        and commits a bucket to the backend only once the watermark
        passes its end time.  Returns the number of buckets sealed by
        this call.  Elements later than ``allowed_lateness`` buckets are
        dropped and counted in :meth:`stream_metrics`.
        """
        self._require_open()
        return self._stream_ingestor().push_many(events)

    def ingest_flush(self) -> int:
        """Seal every buffered bucket up to the event-time high-water mark.

        Call at end of stream; without it the final
        ``allowed_lateness`` buckets stay buffered waiting for a
        watermark that will never advance.  Returns the number of
        buckets sealed.
        """
        self._require_open()
        return self._stream_ingestor().flush()

    def ingest_source(
        self,
        source: Union[str, StreamSource, None] = None,
        *,
        flush: bool = True,
        **options: object,
    ) -> StreamMetrics:
        """Drain a whole :class:`~repro.streams.StreamSource` through ingest.

        ``source`` is a source instance, a registered source name (with
        ``options`` forwarded to its factory), or ``None`` to use the
        configured ``streams.source`` name.  Flushes at end of feed
        unless ``flush=False`` and returns the resulting metrics
        snapshot.
        """
        self._require_open()
        if source is None:
            streams = self._config.streams
            source = streams.source if streams is not None else "memory"
        if isinstance(source, str):
            source = create_source(source, **options)
        elif options:
            raise ValueError(
                "source options are only valid with a registered source name, "
                "not a source instance"
            )
        ingestor = self._stream_ingestor()
        ingestor.push_many(iter(source))
        if flush:
            ingestor.flush()
        return ingestor.metrics()

    def stream_metrics(self) -> StreamMetrics:
        """The event-time ingest accounting (lateness, drops, watermark lag)."""
        self._require_open()
        return self._stream_ingestor().metrics()

    # -- queries -----------------------------------------------------------------------

    def query(
        self,
        query: QueryLike,
        k: Optional[int] = None,
        algorithm: AlgorithmLike = None,
        epsilon: Optional[float] = None,
    ) -> QueryResult:
        """Answer an ad-hoc k-SIR query against the current window."""
        self._require_open()
        return self._backend.query(query, k, algorithm=algorithm, epsilon=epsilon)

    def infer_query(self, keywords: Sequence[str], k: int) -> KSIRQuery:
        """Build a :class:`KSIRQuery` from raw keywords.

        Uses the engine's configured inferencer (the same one ingest
        uses), so the query-by-keyword transformation cannot drift from
        the stream side.
        """
        vector = infer_query_vector(self._model, keywords, inferencer=self._inferencer)
        return KSIRQuery(k=k, vector=vector, keywords=tuple(keywords))

    def query_keywords(
        self,
        keywords: Sequence[str],
        k: int,
        algorithm: AlgorithmLike = None,
        epsilon: Optional[float] = None,
    ) -> QueryResult:
        """Answer a keyword query (the paper's query-by-keyword paradigm)."""
        return self.query(
            self.infer_query(keywords, k), algorithm=algorithm, epsilon=epsilon
        )

    def snapshot(self) -> ScoringContext:
        """A frozen scoring snapshot of the current active window."""
        self._require_open()
        return self._backend.snapshot()

    def stats(self) -> Dict[str, object]:
        """Backend counters for reporting and monitoring.

        Includes a ``"kernels"`` section — the process-wide per-kernel
        call counts and cumulative nanoseconds from
        :func:`repro.kernels.kernel_stats` — which the serving tier
        re-exposes as ``ksir_kernel_*`` Prometheus gauges.
        """
        self._require_open()
        stats = dict(self._backend.stats())
        stats["kernels"] = kernel_stats()
        return stats

    # -- standing queries --------------------------------------------------------------

    def _service(self) -> ServiceEngine:
        self._require_open()
        engine = self.service_engine
        if engine is None:
            raise RuntimeError(
                f"standing queries require the 'service' backend (this engine "
                f"runs '{self.backend_name}'); construct it with "
                f'EngineConfig(backend="service")'
            )
        return engine

    def register(
        self,
        query: Union[KSIRQuery, Sequence[str]],
        k: Optional[int] = None,
        query_id: Optional[str] = None,
        algorithm: Optional[str] = None,
        epsilon: Optional[float] = None,
        ttl_buckets: Optional[int] = None,
    ) -> StandingQuery:
        """Register a standing query (service backend only).

        ``query`` is a :class:`KSIRQuery` or a raw keyword sequence (in
        which case ``k`` must be given and the engine infers the vector).
        """
        if not isinstance(query, KSIRQuery):
            if k is None:
                raise ValueError("k must be provided when registering by keywords")
            query = self.infer_query(list(query), k)
        return self._service().register(
            query,
            query_id=query_id,
            algorithm=algorithm,
            epsilon=epsilon,
            ttl_buckets=ttl_buckets,
        )

    def unregister(self, query_id: str) -> bool:
        """Drop a standing query (service backend only)."""
        return self._service().unregister(query_id)

    def result(self, query_id: str) -> Optional[StandingResult]:
        """The cached standing answer with staleness (service backend only)."""
        return self._service().result(query_id)

    def results(self) -> Dict[str, StandingResult]:
        """Every cached standing answer (service backend only)."""
        return self._service().results()

    def report(self) -> str:
        """The human-readable serving report (service backend only)."""
        return self._service().report()

    # -- checkpoint / restore ----------------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the engine to a checkpoint directory at ``path``.

        The checkpoint holds the engine configuration, the topic model
        and the backend's complete execution state (window, ranked lists,
        counters, standing queries and their cached results), in the
        versioned format described in :mod:`repro.api.checkpoint`.
        Returns the directory written.
        """
        self._require_open()
        return write_checkpoint(
            path,
            backend_name=self.backend_name,
            config=self._config,
            topic_model=self._model,
            state=self._backend.state_dict(),
        )

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        inferencer: Optional[TopicInferencer] = None,
        config: Optional[EngineConfig] = None,
    ) -> "KSIREngine":
        """Restore an engine from a :meth:`save` checkpoint.

        The engine resumes exactly where the checkpoint left off: feeding
        it the remaining stream buckets produces the same windows, ranked
        lists and query answers (within float re-association noise) as an
        uninterrupted run.  ``config`` may override the persisted
        configuration — the processor/cluster shape must stay compatible
        (window length, shard count, partitioner), which the layer-wise
        restores enforce; ``inferencer`` overrides the persisted
        inference settings (needed for stateful Gibbs inference, whose
        RNG is not serialisable).

        ``path`` may also be a delta-checkpoint chain written by
        :class:`repro.ha.delta.CheckpointChain` (detected by its
        ``CHAIN.json`` manifest); the chain's newest state is folded and
        restored identically to a plain checkpoint.
        """
        from repro.ha.delta import CheckpointChain

        if CheckpointChain.is_chain(path):
            payload = CheckpointChain(path).read_payload()
        else:
            payload = read_checkpoint(path)
        engine_config = config if config is not None else payload.config
        engine = cls(payload.topic_model, engine_config, inferencer=inferencer)
        if engine.backend_name != payload.backend:
            raise CheckpointError(
                f"checkpoint was written by the {payload.backend!r} backend but "
                f"the configuration selects {engine.backend_name!r}"
            )
        engine._backend.restore_state(payload.state)
        return engine

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (idempotent)."""
        if not self._closed:
            self._backend.close()
            self._closed = True

    def __enter__(self) -> "KSIREngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("the engine has been closed")
