"""The formal execution-backend protocol of the :mod:`repro.api` facade.

Every way of executing k-SIR workloads — one processor, a sharded
cluster, a standing-query serving engine — is an :class:`ExecutionBackend`:
a named adapter with a uniform lifecycle (``ingest_bucket`` → ``query`` /
``snapshot`` / ``stats`` → ``close``) plus checkpoint hooks
(``state_dict`` / ``restore_state``).  The :class:`~repro.api.engine.KSIREngine`
facade programs against this protocol only, so new execution strategies
(remote workers, replicated read paths, ...) plug in by registering a
factory under a new name — no facade changes required.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np
import numpy.typing as npt

from repro.api.config import EngineConfig
from repro.core.algorithms import KSIRAlgorithm
from repro.core.element import SocialElement
from repro.core.processor import ProcessorConfig
from repro.core.query import KSIRQuery, QueryResult
from repro.core.scoring import ScoringContext
from repro.topics.inference import TopicInferencer
from repro.topics.model import TopicModel

#: Query inputs accepted by every backend (mirrors ``KSIRQuery.coerce``).
QueryLike = Union[KSIRQuery, npt.NDArray[np.float64], Sequence[float]]

#: Algorithm selectors accepted by every backend.
AlgorithmLike = Union[str, KSIRAlgorithm, None]


@runtime_checkable
class ExecutionBackend(Protocol):
    """The contract every execution adapter satisfies.

    Structural typing keeps adapters decoupled from the facade: anything
    with these members — including third-party classes that never import
    this module — can serve as a backend.  The three built-in adapters
    (:class:`~repro.api.backends.LocalBackend`,
    :class:`~repro.api.backends.ShardedBackend`,
    :class:`~repro.api.backends.ServiceBackend`) are checked against the
    protocol statically (mypy) and at import time (runtime registration).
    """

    @property
    def name(self) -> str:
        """The backend's registry name."""
        ...

    @property
    def topic_model(self) -> TopicModel:
        """The topic-model oracle queries and ingest run against."""
        ...

    @property
    def processor_config(self) -> ProcessorConfig:
        """The per-node stream-processor configuration."""
        ...

    @property
    def buckets_processed(self) -> int:
        """Buckets ingested so far."""
        ...

    @property
    def elements_processed(self) -> int:
        """Stream elements ingested so far."""
        ...

    @property
    def active_count(self) -> int:
        """Number of currently active elements."""
        ...

    @property
    def current_time(self) -> Optional[int]:
        """Stream time of the last ingested bucket (None before any)."""
        ...

    def ingest_bucket(
        self, elements: Sequence[SocialElement], end_time: int
    ) -> None:
        """Ingest one stream bucket ending at ``end_time``."""
        ...

    def query(
        self,
        query: QueryLike,
        k: Optional[int] = None,
        algorithm: AlgorithmLike = None,
        epsilon: Optional[float] = None,
    ) -> QueryResult:
        """Answer an ad-hoc k-SIR query against the current window."""
        ...

    def snapshot(self) -> ScoringContext:
        """A frozen scoring snapshot of the current active window."""
        ...

    def stats(self) -> Dict[str, object]:
        """Backend-specific counters for reporting and monitoring."""
        ...

    def state_dict(self) -> Dict[str, object]:
        """A JSON-serialisable snapshot for checkpointing."""
        ...

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        ...

    def close(self) -> None:
        """Release executor/process resources (idempotent)."""
        ...


#: Signature of a backend factory: model + engine config + optional
#: inferencer → a ready adapter.
BackendFactory = Callable[
    [TopicModel, EngineConfig, Optional[TopicInferencer]], ExecutionBackend
]

_REGISTRY: Dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory) -> None:
    """Register an execution-backend factory under a canonical name.

    Re-registering a name replaces the factory (useful for tests and for
    deployments that swap in instrumented adapters).
    """
    _REGISTRY[name.strip().lower()] = factory


def backend_names() -> Tuple[str, ...]:
    """The registered canonical backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_backend(
    name: str,
    topic_model: TopicModel,
    config: EngineConfig,
    inferencer: Optional[TopicInferencer] = None,
) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``.

    Applies the configuration's kernel selection first (process-wide, see
    :mod:`repro.kernels`), so every processor the adapter constructs runs
    on the requested kernel backend.
    """
    from repro.kernels import configure_kernels

    configure_kernels(config.kernels.mode)
    key = name.strip().lower()
    try:
        factory = _REGISTRY[key]
    except KeyError as error:
        available = ", ".join(backend_names()) or "<none registered>"
        raise ValueError(
            f"unknown execution backend {name!r}; registered: {available}"
        ) from error
    return factory(topic_model, config, inferencer)
