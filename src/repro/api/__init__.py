"""repro.api — the unified facade over every k-SIR execution surface.

One :class:`KSIREngine`, constructed from one composable
:class:`EngineConfig`, runs the same workload on any registered
:class:`ExecutionBackend` — single-node (``"local"``), sharded
(``"sharded"``) or standing-query serving (``"service"``) — and persists
or resumes full execution state through the versioned checkpoint format
(:meth:`KSIREngine.save` / :meth:`KSIREngine.load`).

* :class:`EngineConfig` / :class:`ServiceConfig` / :class:`InferenceConfig`
  / :class:`KernelConfig` / :class:`~repro.streams.StreamConfig` — the
  nested configuration with ``to_dict``/``from_dict`` round-trip and
  ``argparse`` integration;
* :class:`ExecutionBackend` + :func:`register_backend` /
  :func:`create_backend` / :func:`backend_names` — the formal backend
  protocol and its adapter registry;
* :class:`LocalBackend` / :class:`ShardedBackend` / :class:`ServiceBackend`
  — the built-in adapters (importing this package registers them);
* :class:`KSIREngine` — the facade;
* :class:`CheckpointError` + the format constants — checkpoint handling.
"""

from repro.api.backend import (
    ExecutionBackend,
    backend_names,
    create_backend,
    register_backend,
)
from repro.api.backends import LocalBackend, ServiceBackend, ShardedBackend
from repro.api.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    read_checkpoint,
    write_checkpoint,
)
from repro.api.config import (
    BACKEND_ALIASES,
    QUERY_INFERENCE,
    EngineConfig,
    InferenceConfig,
    KernelConfig,
    ServiceConfig,
    canonical_backend_name,
)
from repro.api.engine import KSIREngine
from repro.streams.config import StreamConfig

__all__ = [
    "BACKEND_ALIASES",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "EngineConfig",
    "ExecutionBackend",
    "InferenceConfig",
    "KSIREngine",
    "KernelConfig",
    "LocalBackend",
    "QUERY_INFERENCE",
    "ServiceBackend",
    "ServiceConfig",
    "ShardedBackend",
    "StreamConfig",
    "backend_names",
    "canonical_backend_name",
    "create_backend",
    "read_checkpoint",
    "register_backend",
    "write_checkpoint",
]
