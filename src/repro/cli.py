"""Command-line interface for the k-SIR reproduction.

The CLI exposes the workflows a user of the released system would want
without writing Python:

* ``repro-ksir generate`` — generate a synthetic stream from a named profile
  and save it (JSONL) together with its topic-model oracle (``.npz``);
* ``repro-ksir stats`` — print Table-3-style statistics of a profile or of a
  previously saved stream;
* ``repro-ksir query`` — replay a stream and answer a keyword query with any
  of the registered algorithms;
* ``repro-ksir serve`` — replay a stream while continuously maintaining N
  registered standing queries and print the service metrics report;
* ``repro-ksir server`` — expose the engine over HTTP + WebSockets (REST
  CRUD for standing queries, bucket ingest, checkpoints, Prometheus
  metrics and push channels); runs under uvicorn when the ``server``
  extra is installed and under the bundled stdlib ASGI server otherwise;
* ``repro-ksir experiment`` — regenerate one of the paper's tables or figures
  with reduced, CLI-friendly settings;
* ``repro-ksir bench`` — run/list/profile/compare the registered
  benchmarks: every run writes canonical ``BENCH_<name>.json`` reports,
  ``bench profile`` prints cProfile hot spots plus the per-kernel timer
  table for any scenario, and ``bench compare`` classifies regressions
  against a baseline directory (the CI perf gate);
* ``repro-ksir ha`` — the supervised cluster runtime: inspect and compact
  delta-checkpoint chains, and run a kill-and-recover failover drill that
  SIGKILLs a live shard mid-stream and verifies the recovered cluster
  answers queries identically to an uninterrupted run.

Every subcommand is a thin wrapper over the public library API, so the CLI
doubles as executable documentation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

from repro.api import EngineConfig, KSIREngine, LocalBackend
from repro.core.algorithms import ALGORITHM_REGISTRY
from repro.kernels import KERNEL_CHOICES
from repro.datasets.loaders import load_stream_jsonl, save_stream_jsonl
from repro.datasets.profiles import profile_names
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.evaluation.workload import WorkloadGenerator
from repro.experiments import figures as figure_experiments
from repro.experiments import tables as table_experiments
from repro.experiments.config import EffectivenessConfig, EfficiencyConfig
from repro.topics.model import MatrixTopicModel

#: Experiments runnable from the CLI, mapped to zero-argument-ish callables.
EXPERIMENT_CHOICES = (
    "table3",
    "table5",
    "table6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
)

def _canonical_algorithm_names() -> tuple:
    """One name per registered algorithm class (shortest spelling wins)."""
    best: Dict[type, str] = {}
    for name, cls in ALGORITHM_REGISTRY.items():
        current = best.get(cls)
        if current is None or (len(name), name) < (len(current), current):
            best[cls] = name
    return tuple(sorted(best.values()))


#: Algorithm names accepted by ``query``/``serve`` (derived from the
#: registry, so newly registered algorithms appear automatically).
ALGORITHM_CHOICES = _canonical_algorithm_names()


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser of the ``repro-ksir`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-ksir",
        description="Semantic and Influence aware k-Representative queries over social streams",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic stream and save it to disk"
    )
    generate.add_argument("profile", choices=sorted(profile_names()))
    generate.add_argument("--seed", type=int, default=2019)
    generate.add_argument("--output-dir", type=Path, default=Path("data"))

    stats = subparsers.add_parser(
        "stats", help="print dataset statistics for a profile or a saved stream"
    )
    stats.add_argument("--profile", choices=sorted(profile_names()))
    stats.add_argument("--stream", type=Path, help="path to a JSONL stream")
    stats.add_argument("--seed", type=int, default=2019)

    query = subparsers.add_parser(
        "query", help="replay a stream and answer a keyword k-SIR query"
    )
    query.add_argument("keywords", nargs="+", help="query keywords")
    query.add_argument("--profile", default="twitter-small", choices=sorted(profile_names()))
    query.add_argument("--stream", type=Path, help="JSONL stream (defaults to generating the profile)")
    query.add_argument("--model", type=Path, help="topic model .npz (required with --stream)")
    query.add_argument("--k", type=int, default=10)
    query.add_argument("--algorithm", default="mttd", choices=ALGORITHM_CHOICES)
    query.add_argument("--epsilon", type=float, default=0.1)
    query.add_argument("--seed", type=int, default=2019)
    # Engine options (--backend/--shards/... and --window-hours/...) come
    # from one shared helper, so subcommands cannot drift apart.
    EngineConfig.add_arguments(query)

    serve = subparsers.add_parser(
        "serve", help="replay a stream while maintaining standing k-SIR queries"
    )
    serve.add_argument("--profile", default="tiny", choices=sorted(profile_names()))
    serve.add_argument("--queries", type=int, default=100,
                       help="number of standing queries to register")
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument("--algorithm", default="mttd", choices=ALGORITHM_CHOICES)
    serve.add_argument("--epsilon", type=float, default=0.1)
    serve.add_argument("--mode", default="topical",
                       choices=["topical", "frequency", "uniform"],
                       help="standing-query keyword sampling mode")
    serve.add_argument("--ttl-buckets", type=int, default=None,
                       help="drop standing queries after this many buckets")
    serve.add_argument("--top", type=int, default=3,
                       help="standing results to print after the replay")
    serve.add_argument("--seed", type=int, default=2019)
    EngineConfig.add_arguments(serve, service=True)

    server = subparsers.add_parser(
        "server", help="serve standing k-SIR queries over HTTP and WebSockets"
    )
    server.add_argument("--host", default="127.0.0.1")
    server.add_argument("--port", type=int, default=8000)
    server.add_argument("--profile", default="tiny", choices=sorted(profile_names()),
                        help="synthetic profile providing the topic model")
    server.add_argument("--stream", type=Path,
                        help="JSONL stream to replay before serving")
    server.add_argument("--model", type=Path,
                        help="topic model .npz (required with --stream)")
    server.add_argument("--preload", action="store_true",
                        help="replay the profile's stream before serving")
    server.add_argument("--checkpoint", type=Path, default=None,
                        help="restore the engine from a checkpoint directory")
    server.add_argument("--store-path", type=Path, default=None,
                        help="SQLite file persisting runtime telemetry across "
                             "restarts (default: in-memory)")
    server.add_argument("--http-workers", type=int, default=8,
                        help="request worker threads of the serving tier")
    server.add_argument("--seed", type=int, default=2019)
    EngineConfig.add_arguments(server, service=True)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables or figures"
    )
    experiment.add_argument("name", choices=EXPERIMENT_CHOICES)
    experiment.add_argument("--datasets", nargs="+", default=None,
                            help="dataset profiles (default: the three -small profiles)")
    experiment.add_argument("--queries", type=int, default=5,
                            help="queries per sweep point")
    experiment.add_argument("--seed", type=int, default=2019)

    bench = subparsers.add_parser(
        "bench", help="run, list or compare the registered benchmarks"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_list = bench_sub.add_parser("list", help="list registered benchmarks")
    bench_list.add_argument("--tag", action="append", default=None,
                            help="only benchmarks carrying this tag (repeatable)")

    bench_run = bench_sub.add_parser(
        "run", help="execute benchmarks and write BENCH_<name>.json reports"
    )
    bench_run.add_argument("names", nargs="*",
                           help="benchmark names (default: every registered one)")
    bench_run.add_argument("--tier", default="tiny", choices=["tiny", "full"],
                           help="size tier: tiny for CI smoke runs, full for "
                                "real measurements")
    bench_run.add_argument("--tag", action="append", default=None,
                           help="only benchmarks carrying this tag (repeatable); "
                                "'micro' selects the CI perf-smoke subset")
    bench_run.add_argument("--seed", type=int, default=2019)
    bench_run.add_argument("--output-dir", type=Path,
                           default=Path("benchmarks/results"),
                           help="where reports and rendered artefacts are written")

    bench_profile = bench_sub.add_parser(
        "profile",
        help="profile one benchmark scenario: cProfile hot spots plus the "
             "per-kernel timer table",
    )
    bench_profile.add_argument("name", help="a registered benchmark name")
    bench_profile.add_argument("--tier", default="tiny", choices=["tiny", "full"],
                               help="size tier of the profiled scenario")
    bench_profile.add_argument("--scenario", default=None,
                               help="scenario name (default: every scenario "
                                    "of the tier)")
    bench_profile.add_argument("--seed", type=int, default=2019)
    bench_profile.add_argument("--kernels", default="auto",
                               choices=list(KERNEL_CHOICES),
                               help="kernel backend to profile under")
    bench_profile.add_argument("--top", type=int, default=20,
                               help="cProfile rows to print per scenario")

    bench_compare = bench_sub.add_parser(
        "compare", help="classify regressions between two report sets"
    )
    bench_compare.add_argument("baseline", type=Path,
                               help="baseline BENCH_*.json file or directory")
    bench_compare.add_argument("candidate", type=Path,
                               help="candidate BENCH_*.json file or directory")
    bench_compare.add_argument("--tolerance", type=float, default=0.25,
                               help="allowed latency-ratio slack (0.25 = 25%%)")
    bench_compare.add_argument("--raw", action="store_true",
                               help="compare raw milliseconds instead of "
                                    "calibration-normalised latencies")
    bench_compare.add_argument("--min-p50-ms", type=float, default=1.0,
                               help="scenarios faster than this on both sides "
                                    "are never classified (timer noise)")

    ha = subparsers.add_parser(
        "ha", help="supervised cluster runtime: chains, compaction, failover drills"
    )
    ha_sub = ha.add_subparsers(dest="ha_command", required=True)

    ha_chain = ha_sub.add_parser(
        "chain", help="inspect a delta-checkpoint chain (segments and savings)"
    )
    ha_chain.add_argument("path", type=Path, help="chain directory (holds CHAIN.json)")

    ha_compact = ha_sub.add_parser(
        "compact", help="fold a chain into one full segment and drop the rest"
    )
    ha_compact.add_argument("path", type=Path, help="chain directory (holds CHAIN.json)")

    ha_drill = ha_sub.add_parser(
        "drill", help="kill a live shard mid-stream, recover, verify equivalence"
    )
    ha_drill.add_argument("--profile", default="tiny", choices=sorted(profile_names()))
    ha_drill.add_argument("--shards", type=int, default=2,
                          help="process shard workers to run")
    ha_drill.add_argument("--transport", default="pipe", choices=["pipe", "shm"],
                          help="process transport: pickled pipes or shared-memory columns")
    ha_drill.add_argument("--kill-shard", type=int, default=None,
                          help="shard to SIGKILL (default: the last one)")
    ha_drill.add_argument("--kill-after", type=int, default=5,
                          help="buckets to ingest before the kill")
    ha_drill.add_argument("--checkpoint-every", type=int, default=4,
                          help="delta-checkpoint cadence in buckets (0 = WAL only)")
    ha_drill.add_argument("--checkpoint-dir", type=Path, default=None,
                          help="chain directory (default: a temporary one)")
    ha_drill.add_argument("--queries", type=int, default=5,
                          help="verification queries after the replay")
    ha_drill.add_argument("--k", type=int, default=5)
    ha_drill.add_argument("--seed", type=int, default=2019)

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------


def _print(text: str) -> None:
    print(text)


def run_generate(args: argparse.Namespace) -> int:
    dataset = SyntheticStreamGenerator.from_profile(args.profile, seed=args.seed).generate()
    output_dir = args.output_dir / args.profile
    stream_path = output_dir / "stream.jsonl"
    model_path = output_dir / "topic_model.npz"
    count = save_stream_jsonl(dataset.stream, stream_path)
    dataset.topic_model.save(model_path)
    _print(f"wrote {count} elements to {stream_path}")
    _print(f"wrote topic model ({dataset.topic_model.num_topics} topics) to {model_path}")
    stats = dataset.statistics()
    _print(
        f"avg length {stats['average_length']:.2f}, "
        f"avg references {stats['average_references']:.2f}"
    )
    return 0


def run_stats(args: argparse.Namespace) -> int:
    if (args.profile is None) == (args.stream is None):
        _print("error: provide exactly one of --profile or --stream")
        return 2
    if args.profile is not None:
        table = table_experiments.dataset_statistics_table(
            datasets=(args.profile,), seed=args.seed
        )
        _print(table.render())
        return 0
    stream = load_stream_jsonl(args.stream)
    elements = stream.elements
    total_length = sum(len(e.tokens) for e in elements)
    total_references = sum(len(e.references) for e in elements)
    distinct = {token for element in elements for token in element.tokens}
    _print(f"elements:        {len(elements)}")
    _print(f"vocabulary:      {len(distinct)}")
    _print(f"avg length:      {total_length / max(1, len(elements)):.2f}")
    _print(f"avg references:  {total_references / max(1, len(elements)):.2f}")
    if elements:
        _print(f"time span:       {stream.start_time} .. {stream.end_time}")
    return 0


def run_query(args: argparse.Namespace) -> int:
    if args.stream is not None:
        if args.model is None:
            _print("error: --model is required when --stream is given")
            return 2
        stream = load_stream_jsonl(args.stream)
        model = MatrixTopicModel.load(args.model)
    else:
        dataset = SyntheticStreamGenerator.from_profile(args.profile, seed=args.seed).generate()
        stream = dataset.stream
        model = dataset.topic_model

    # Both input paths share the engine's inference settings (from
    # EngineConfig.from_args), so stream-file and profile runs infer
    # query vectors identically.
    config = EngineConfig.from_args(args)
    with KSIREngine(model, config) as engine:
        engine.process_stream(stream)
        cluster = engine.config.cluster
        where = (
            f" across {cluster.num_shards} shards" if engine.config.is_sharded else ""
        )
        _print(
            f"replayed {engine.elements_processed} elements{where}; "
            f"{engine.active_count} active at time {engine.current_time}"
        )

        result = engine.query_keywords(
            args.keywords, k=args.k, algorithm=args.algorithm, epsilon=args.epsilon
        )
        _print(result.summary())
        elements_by_id = {element.element_id: element for element in stream}
        backend = engine.backend
        if isinstance(backend, LocalBackend):
            follower_count = backend.processor.window.follower_count
        else:
            # Shard windows are not exposed here; show the stream-wide
            # in-degree instead (one pass, shared by every result line).
            in_degree: Dict[int, int] = {}
            for element in stream:
                for parent_id in element.references:
                    in_degree[parent_id] = in_degree.get(parent_id, 0) + 1
            follower_count = lambda element_id: in_degree.get(element_id, 0)  # noqa: E731
        for element_id in result.element_ids:
            element = elements_by_id[element_id]
            _print(
                f"  e{element_id} ({follower_count(element_id)} refs): "
                + " ".join(element.tokens[:10])
            )
    return 0


def run_serve(args: argparse.Namespace) -> int:
    dataset = SyntheticStreamGenerator.from_profile(args.profile, seed=args.seed).generate()
    config = EngineConfig.from_args(args, service=True)
    generator = WorkloadGenerator(
        dataset, k=args.k, mode=args.mode, seed=args.seed + 17
    )
    with KSIREngine(dataset.topic_model, config) as engine:
        for _ in range(args.queries):
            engine.register(
                generator.generate_query(),
                algorithm=args.algorithm,
                epsilon=args.epsilon,
                ttl_buckets=args.ttl_buckets,
            )
        engine.process_stream(dataset.stream)
        _print(engine.report())

        service = engine.service_engine
        assert service is not None  # the service backend always has one
        shown = 0
        for query_id, standing_result in engine.results().items():
            if shown >= max(0, args.top):
                break
            standing = service.registry.get(query_id)
            keywords = " ".join(standing.query.keywords) or "<no keywords>"
            result = standing_result.result
            _print(
                f"  {query_id} [{keywords}]: |S|={len(result)} "
                f"score={result.score:.4f} stale={standing_result.staleness_buckets} "
                f"buckets, evaluated {standing_result.evaluations}x"
            )
            shown += 1
    return 0


def build_server_app(args: argparse.Namespace):
    """Build the ASGI serving app from ``server`` subcommand arguments.

    Split from :func:`run_server` so tests (and programmatic embedders) can
    construct the exact app the CLI would serve without binding a socket.
    The serving tier is imported lazily: the core CLI works without it and
    the tier itself works without its optional dependencies.
    """
    import dataclasses

    from repro.server.app import create_app
    from repro.server.runtime_store import RuntimeStore

    config = EngineConfig.from_args(args, service=True)
    if config.backend != "service":
        # Standing queries and pushes are the product of this tier.
        config = dataclasses.replace(config, backend="service")

    if args.checkpoint is not None:
        engine = KSIREngine.load(args.checkpoint)
        if engine.service_engine is None:
            engine.close()
            raise SystemExit("error: checkpoint does not hold a service-backend engine")
    elif args.stream is not None:
        if args.model is None:
            raise SystemExit("error: --model is required when --stream is given")
        stream = load_stream_jsonl(args.stream)
        model = MatrixTopicModel.load(args.model)
        engine = KSIREngine(model, config)
        engine.process_stream(stream)
        _print(f"replayed {engine.elements_processed} elements from {args.stream}")
    else:
        dataset = SyntheticStreamGenerator.from_profile(
            args.profile, seed=args.seed
        ).generate()
        engine = KSIREngine(dataset.topic_model, config)
        if args.preload:
            engine.process_stream(dataset.stream)
            _print(
                f"replayed {engine.elements_processed} elements "
                f"of profile {args.profile!r}"
            )

    store = RuntimeStore(args.store_path) if args.store_path is not None else None
    return create_app(engine, store=store, max_workers=args.http_workers)


def run_server(args: argparse.Namespace) -> int:
    app = build_server_app(args)
    try:
        try:
            import uvicorn
        except ImportError:
            from repro.server.asgi import run as run_stdlib

            _print(
                "uvicorn is not installed (pip install 'repro-ksir[server]'); "
                "using the bundled stdlib ASGI server"
            )
            run_stdlib(app, host=args.host, port=args.port)
        else:
            uvicorn.run(app, host=args.host, port=args.port)
    finally:
        store = app.store
        app.close()
        store.close()
    return 0


def _experiment_runner(name: str, efficiency: EfficiencyConfig,
                       effectiveness: EffectivenessConfig, queries: int) -> str:
    if name == "table3":
        return table_experiments.dataset_statistics_table(
            datasets=effectiveness.datasets, seed=effectiveness.seed
        ).render()
    if name == "table5":
        return table_experiments.user_study_table(effectiveness, num_queries=queries).render(2)
    if name == "table6":
        return table_experiments.quantitative_table(effectiveness, num_queries=queries).render()
    figure_functions: Dict[str, Callable] = {
        "figure7": figure_experiments.figure7_time_vs_epsilon,
        "figure8": figure_experiments.figure8_score_vs_epsilon,
        "figure9": figure_experiments.figure9_time_vs_k,
        "figure10": figure_experiments.figure10_evaluation_ratio,
        "figure11": figure_experiments.figure11_score_vs_k,
        "figure12": figure_experiments.figure12_time_vs_topics,
        "figure13": figure_experiments.figure13_time_vs_window,
    }
    if name in figure_functions:
        return figure_functions[name](efficiency, num_queries=queries).render(3)
    if name == "figure14":
        return figure_experiments.figure14_update_time(efficiency).render(4)
    raise ValueError(f"unknown experiment {name!r}")


def run_experiment(args: argparse.Namespace) -> int:
    datasets = tuple(args.datasets) if args.datasets else None
    efficiency = EfficiencyConfig(seed=args.seed, num_queries=args.queries)
    effectiveness = EffectivenessConfig(seed=args.seed)
    if datasets:
        efficiency = efficiency.with_overrides(datasets=datasets)
        effectiveness = effectiveness.with_overrides(datasets=datasets)
    _print(_experiment_runner(args.name, efficiency, effectiveness, args.queries))
    return 0


def run_bench(args: argparse.Namespace) -> int:
    from repro.bench import compare_many, iter_specs, load_reports
    from repro.bench.runner import capture_environment, run_spec
    from repro.bench.scripts import write_outputs

    if args.bench_command == "list":
        specs = iter_specs(tags=args.tag or ())
        for spec in specs:
            tags = f" [{', '.join(spec.tags)}]" if spec.tags else ""
            scenarios = {
                tier: len(policy.scenarios) for tier, policy in sorted(spec.tiers.items())
            }
            sizes = " ".join(f"{tier}:{count}" for tier, count in scenarios.items())
            _print(f"{spec.name:<24} {sizes:<14}{tags}\n    {spec.description}")
        _print(f"{len(specs)} benchmark(s) registered")
        return 0

    if args.bench_command == "run":
        specs = iter_specs(names=args.names, tags=args.tag or ())
        if not specs:
            _print("error: no benchmarks match the selection")
            return 2
        environment = capture_environment()
        failures = 0
        for spec in specs:
            report, values = run_spec(
                spec, tier=args.tier, seed=args.seed, environment=environment
            )
            path = write_outputs(report, values, args.output_dir)
            _print(report.summary())
            _print(f"[saved to {path}]")
            if not report.checks_passed:
                _print(f"CHECK FAILED ({spec.name}): {report.check_error}")
                failures += 1
        return 1 if failures else 0

    if args.bench_command == "profile":
        return _bench_profile(args)

    if args.bench_command == "compare":
        for path in (args.baseline, args.candidate):
            if not path.exists():
                _print(f"error: {path} does not exist")
                return 2
        old_reports = load_reports(args.baseline)
        new_reports = load_reports(args.candidate)
        if not old_reports or not new_reports:
            _print("error: no BENCH_*.json reports found on one side")
            return 2
        result = compare_many(
            old_reports,
            new_reports,
            tolerance=args.tolerance,
            use_calibration=not args.raw,
            min_p50_ms=args.min_p50_ms,
        )
        _print(result.render())
        return 1 if result.has_regressions else 0

    raise ValueError(f"unknown bench command {args.bench_command!r}")


def _bench_profile(args: argparse.Namespace) -> int:
    """``bench profile``: cProfile one scenario + the kernel timer table.

    Builds the scenario's measured callable exactly like ``bench run``
    (setup stays untimed), then executes it once under :mod:`cProfile`
    with the kernel timers reset, printing the top functions by
    cumulative time followed by the per-kernel call/nanosecond table.
    Works for any registered benchmark.
    """
    import cProfile
    import pstats

    from repro.bench import get_spec
    from repro.kernels import (
        format_kernel_stats,
        kernel_stats,
        reset_kernel_stats,
        use_kernels,
    )

    try:
        spec = get_spec(args.name)
    except KeyError as error:
        _print(f"error: {error}")
        return 2
    try:
        policy = spec.tier(args.tier)
    except KeyError:
        _print(f"error: benchmark {spec.name!r} has no tier {args.tier!r}")
        return 2
    scenarios = policy.scenarios
    if args.scenario is not None:
        scenarios = tuple(s for s in scenarios if s.name == args.scenario)
        if not scenarios:
            known = ", ".join(s.name for s in policy.scenarios)
            _print(
                f"error: unknown scenario {args.scenario!r} "
                f"(tier {args.tier!r} has: {known})"
            )
            return 2
    with use_kernels(args.kernels):
        for scenario in scenarios:
            _print(f"=== {spec.name} / {args.tier} / {scenario.name} ===")
            measured = spec.setup(scenario.params, args.seed)
            reset_kernel_stats()
            profiler = cProfile.Profile()
            profiler.enable()
            try:
                measured()
            finally:
                profiler.disable()
            stats = kernel_stats()
            pstats.Stats(profiler, stream=sys.stdout).sort_stats(
                "cumulative"
            ).print_stats(args.top)
            _print(format_kernel_stats(stats))
            _print("")
    return 0


def run_ha(args: argparse.Namespace) -> int:
    from repro.ha import CheckpointChain

    if args.ha_command == "chain":
        if not CheckpointChain.is_chain(args.path):
            _print(f"error: {args.path} is not a checkpoint chain (no CHAIN.json)")
            return 2
        chain = CheckpointChain(args.path)
        for segment in chain.segments:
            _print(
                f"{segment['name']:<16} {segment['kind']:<6} "
                f"{segment['bytes']:>10} bytes  "
                f"buckets={segment['buckets_processed']} "
                f"t={segment.get('current_time')}"
            )
        stats = chain.stats()
        _print(
            f"{stats['segments']} segment(s): {stats['full_segments']} full, "
            f"{stats['delta_segments']} delta, {stats['total_bytes']} bytes total"
        )
        if stats["delta_segments"]:
            _print(
                f"mean delta {stats['mean_delta_bytes']:.0f} bytes vs "
                f"mean full {stats['mean_full_bytes']:.0f} bytes "
                f"({stats['delta_savings']:.1%} smaller)"
            )
        return 0

    if args.ha_command == "compact":
        if not CheckpointChain.is_chain(args.path):
            _print(f"error: {args.path} is not a checkpoint chain (no CHAIN.json)")
            return 2
        chain = CheckpointChain(args.path)
        before = chain.stats()
        name = chain.compact()
        after = chain.stats()
        _print(
            f"compacted {before['segments']} segment(s) "
            f"({before['total_bytes']} bytes) into {name} "
            f"({after['total_bytes']} bytes)"
        )
        return 0

    if args.ha_command == "drill":
        return _run_ha_drill(args)

    raise ValueError(f"unknown ha command {args.ha_command!r}")


def _run_ha_drill(args: argparse.Namespace) -> int:
    """Kill-and-recover drill: crash a shard mid-stream, verify equivalence."""
    import tempfile

    from repro.cluster.coordinator import ClusterConfig
    from repro.core.stream import replay_stream
    from repro.ha import ClusterSupervisor, HAConfig
    from repro.ha.chaos import kill_worker

    kill_shard = args.kill_shard if args.kill_shard is not None else args.shards - 1
    if not 0 <= kill_shard < args.shards:
        _print(f"error: --kill-shard must be in [0, {args.shards})")
        return 2

    dataset = SyntheticStreamGenerator.from_profile(args.profile, seed=args.seed).generate()
    sharded_config = EngineConfig(
        backend="sharded",
        cluster=ClusterConfig(
            num_shards=args.shards,
            backend="process",
            transport=str(getattr(args, "transport", "pipe")),
        ),
        ha=HAConfig(checkpoint_every=args.checkpoint_every),
    )

    with tempfile.TemporaryDirectory() as tmp:
        chain_dir = args.checkpoint_dir if args.checkpoint_dir is not None else Path(tmp) / "chain"
        engine = KSIREngine(dataset.topic_model, sharded_config)
        with ClusterSupervisor(engine, checkpoint_dir=chain_dir) as supervisor:
            bucket_length = supervisor.coordinator.config.bucket_length
            buckets_seen = 0

            def ingest(elements, end_time) -> None:
                nonlocal buckets_seen
                if buckets_seen == args.kill_after:
                    _print(f"killing shard {kill_shard} before bucket {buckets_seen}")
                    kill_worker(supervisor.coordinator, kill_shard)
                supervisor.ingest_bucket(elements, end_time)
                buckets_seen += 1

            replay_stream(dataset.stream, bucket_length, ingest)
            status = supervisor.status()
            _print(
                f"replayed {supervisor.engine.elements_processed} elements in "
                f"{buckets_seen} buckets across {args.shards} process shards"
            )
            _print(
                f"recoveries: {status['recoveries']}, last recovery "
                f"{(status['last_recovery_seconds'] or 0) * 1000:.1f} ms, "
                f"{status['last_replayed_buckets']} bucket(s) replayed from the WAL"
            )
            if status["chain"] is not None and status["chain"]["delta_segments"]:
                _print(f"delta checkpoints {status['chain']['delta_savings']:.1%} smaller than fulls")

            if status["recoveries"] == 0:
                _print("warning: the kill was never detected (stream too short?)")

            # Equivalence: the recovered cluster must answer exactly like an
            # uninterrupted single-node run over the same stream.
            generator = WorkloadGenerator(dataset, k=args.k, seed=args.seed + 17)
            worst = 0.0
            with KSIREngine(dataset.topic_model, EngineConfig(backend="local")) as reference:
                reference.process_stream(dataset.stream)
                for _ in range(max(1, args.queries)):
                    query = generator.generate_query()
                    recovered = supervisor.query(query)
                    expected = reference.query(query)
                    worst = max(worst, abs(recovered.score - expected.score))
            _print(f"verification: {args.queries} queries, max |Δscore| = {worst:.3g}")
            ok = worst <= 1e-9 and status["recoveries"] >= 1
            _print("DRILL PASSED" if ok else "DRILL FAILED")
            return 0 if ok else 1


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

_COMMANDS: Dict[str, Callable[[argparse.Namespace], int]] = {
    "generate": run_generate,
    "stats": run_stats,
    "query": run_query,
    "serve": run_serve,
    "server": run_server,
    "experiment": run_experiment,
    "bench": run_bench,
    "ha": run_ha,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":
    sys.exit(main())
