"""Focused coverage for SnapshotCache accounting and dirty-topic draining.

The serving and cluster layers both lean on these two pieces of bookkeeping:
the per-bucket snapshot cache must version correctly on ``buckets_processed``
and the ranked lists must report dirty topics across every mutation path —
including :meth:`RankedListIndex.clear`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import ProfileBuilder, ScoringConfig
from repro.service import SnapshotCache
from tests.conftest import build_processor


@pytest.fixture()
def fresh_processor(paper_topic_model):
    config = ProcessorConfig(
        window_length=4, bucket_length=1, scoring=ScoringConfig(lambda_weight=0.5, eta=2.0)
    )
    return build_processor(paper_topic_model, config)


class TestSnapshotCache:
    def test_cold_cache_reports_nothing(self, fresh_processor):
        cache = SnapshotCache(fresh_processor)
        assert cache.version is None
        assert cache.hits == 0 and cache.misses == 0
        assert cache.hit_rate == 0.0

    def test_miss_then_hits_share_one_context(self, fresh_processor, paper_elements):
        fresh_processor.process_bucket(paper_elements[:3], end_time=3)
        cache = SnapshotCache(fresh_processor)
        first = cache.context()
        assert cache.misses == 1 and cache.hits == 0
        assert cache.version == fresh_processor.buckets_processed
        second = cache.context()
        third = cache.context()
        assert second is first and third is first
        assert cache.hits == 2 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_new_bucket_invalidates_and_reversions(self, fresh_processor, paper_elements):
        cache = SnapshotCache(fresh_processor)
        fresh_processor.process_bucket(paper_elements[:3], end_time=3)
        before = cache.context()
        version_before = cache.version
        fresh_processor.process_bucket(paper_elements[3:5], end_time=5)
        after = cache.context()
        assert after is not before
        assert cache.version == fresh_processor.buckets_processed
        assert cache.version == version_before + 1
        assert cache.misses == 2 and cache.hits == 0
        # The refreshed context reflects the new window contents.
        assert set(after.active_ids) >= {4, 5}

    def test_snapshot_cache_agrees_with_processor_snapshot(
        self, fresh_processor, paper_elements
    ):
        fresh_processor.process_bucket(paper_elements[:4], end_time=4)
        cache = SnapshotCache(fresh_processor)
        # The processor memoises its own snapshot per bucket, so the cache
        # must hand back that exact object rather than a rebuilt copy.
        assert cache.context() is fresh_processor.snapshot()


class TestTakeDirtyTopicsAfterClear:
    @pytest.fixture()
    def profiled(self, paper_topic_model, paper_elements):
        config = ScoringConfig(lambda_weight=0.5, eta=2.0)
        builder = ProfileBuilder(paper_topic_model, config)
        profiles = [builder.build(element) for element in paper_elements[:3]]
        return config, profiles

    def test_clear_marks_populated_topics_dirty(self, profiled):
        config, profiles = profiled
        index = RankedListIndex(2, config)
        for profile in profiles:
            index.insert(profile)
        populated = {
            topic for topic in range(index.num_topics) if index.list_size(topic) > 0
        }
        index.take_dirty_topics()  # drain the insert dirt
        index.clear()
        assert set(index.take_dirty_topics()) == populated
        assert index.element_count == 0
        assert index.total_tuples() == 0

    def test_clear_on_empty_lists_reports_nothing(self, profiled):
        config, _profiles = profiled
        index = RankedListIndex(2, config)
        index.clear()
        assert index.take_dirty_topics() == ()

    def test_drain_is_destructive_and_rebuildable(self, profiled):
        config, profiles = profiled
        index = RankedListIndex(2, config)
        index.insert(profiles[0])
        first = index.take_dirty_topics()
        assert first == tuple(sorted(profiles[0].topics))
        assert index.take_dirty_topics() == ()
        index.clear()
        index.take_dirty_topics()
        # Rebuilding after clear() dirties the re-inserted topics again.
        index.insert(profiles[1])
        assert index.take_dirty_topics() == tuple(sorted(profiles[1].topics))

    def test_peek_does_not_drain(self, profiled):
        config, profiles = profiled
        index = RankedListIndex(2, config)
        index.insert(profiles[0])
        index.clear()
        peeked = index.peek_dirty_topics()
        assert peeked == index.peek_dirty_topics()
        assert index.take_dirty_topics() == peeked

    def test_remove_after_clear_is_clean(self, profiled):
        config, profiles = profiled
        index = RankedListIndex(2, config)
        index.insert(profiles[0])
        index.clear()
        index.take_dirty_topics()
        # The element is gone; removing it again must not re-dirty topics.
        index.remove(profiles[0].element_id)
        assert index.take_dirty_topics() == ()

    def test_traversal_after_clear_is_exhausted(self, profiled):
        config, profiles = profiled
        index = RankedListIndex(2, config)
        for profile in profiles:
            index.insert(profile)
        index.clear()
        traversal = index.traversal(np.array([0.5, 0.5]))
        assert traversal.exhausted()
        assert traversal.pop() is None
