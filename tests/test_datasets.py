"""Tests for the dataset profiles, the synthetic generator and the loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.loaders import load_stream_jsonl, save_stream_jsonl
from repro.datasets.profiles import DATASET_PROFILES, DatasetProfile, get_profile, profile_names
from repro.datasets.synthetic import TOPIC_THEMES, SyntheticStreamGenerator


class TestProfiles:
    def test_registry_contains_paper_datasets(self):
        for name in ("aminer", "reddit", "twitter"):
            assert name in DATASET_PROFILES
            assert f"{name}-small" in DATASET_PROFILES
        assert "tiny" in DATASET_PROFILES

    def test_get_profile_unknown(self):
        with pytest.raises(ValueError, match="unknown dataset profile"):
            get_profile("nonexistent")

    def test_profile_names_sorted(self):
        names = profile_names()
        assert list(names) == sorted(names)

    def test_shape_statistics_follow_table3_ordering(self):
        """AMiner documents are longest and most referenced; tweets shortest."""
        aminer = get_profile("aminer")
        reddit = get_profile("reddit")
        twitter = get_profile("twitter")
        assert aminer.mean_document_length > reddit.mean_document_length > twitter.mean_document_length
        assert aminer.mean_references > reddit.mean_references > twitter.mean_references

    def test_invalid_profile_parameters(self):
        with pytest.raises(ValueError):
            DatasetProfile(
                name="bad", description="", num_elements=0, vocabulary_size=10,
                num_topics=2, duration=10, mean_document_length=3, mean_references=0.5,
            )
        with pytest.raises(ValueError):
            DatasetProfile(
                name="bad", description="", num_elements=10, vocabulary_size=10,
                num_topics=2, duration=10, mean_document_length=3, mean_references=0.5,
                topical_reference_bias=1.5,
            )

    def test_scaled_profile(self):
        profile = get_profile("tiny").scaled(2.0)
        assert profile.num_elements == 2 * get_profile("tiny").num_elements
        assert profile.duration == 2 * get_profile("tiny").duration
        assert profile.name.startswith("tiny")

    def test_with_topics(self):
        profile = get_profile("tiny").with_topics(7)
        assert profile.num_topics == 7
        assert get_profile("tiny").num_topics != 7 or True  # original untouched

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            get_profile("tiny").scaled(0.0)


class TestSyntheticGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return SyntheticStreamGenerator.from_profile("tiny", seed=123).generate()

    def test_generates_requested_number_of_elements(self, dataset):
        assert len(dataset.stream) == dataset.profile.num_elements

    def test_elements_are_ordered_and_unique(self, dataset):
        timestamps = [element.timestamp for element in dataset.stream]
        assert timestamps == sorted(timestamps)
        ids = [element.element_id for element in dataset.stream]
        assert len(ids) == len(set(ids))

    def test_topic_distributions_are_sparse_probabilities(self, dataset):
        max_topics = dataset.profile.max_topics_per_element
        for element in dataset.stream:
            distribution = element.topic_distribution
            assert distribution is not None
            assert distribution.sum() == pytest.approx(1.0)
            assert np.all(distribution >= 0.0)
            assert int(np.count_nonzero(distribution)) <= max_topics

    def test_references_point_to_earlier_elements(self, dataset):
        by_id = {element.element_id: element for element in dataset.stream}
        for element in dataset.stream:
            for parent_id in element.references:
                assert parent_id in by_id
                assert by_id[parent_id].timestamp <= element.timestamp
                age = element.timestamp - by_id[parent_id].timestamp
                assert age <= dataset.profile.reference_horizon

    def test_documents_use_vocabulary_words(self, dataset):
        for element in dataset.stream.elements[:50]:
            assert len(element.tokens) >= 2
            for token in element.tokens:
                assert token in dataset.vocabulary

    def test_topic_model_is_valid_oracle(self, dataset):
        assert dataset.topic_model.validate()
        assert dataset.topic_model.num_topics == dataset.profile.num_topics
        assert len(dataset.topic_names) == dataset.profile.num_topics

    def test_seed_reproducibility(self):
        first = SyntheticStreamGenerator.from_profile("tiny", seed=9).generate()
        second = SyntheticStreamGenerator.from_profile("tiny", seed=9).generate()
        assert len(first.stream) == len(second.stream)
        for left, right in zip(first.stream, second.stream):
            assert left.tokens == right.tokens
            assert left.references == right.references
            assert left.timestamp == right.timestamp

    def test_different_seeds_differ(self):
        first = SyntheticStreamGenerator.from_profile("tiny", seed=1).generate()
        second = SyntheticStreamGenerator.from_profile("tiny", seed=2).generate()
        assert any(
            left.tokens != right.tokens for left, right in zip(first.stream, second.stream)
        )

    def test_statistics_shape(self, dataset):
        stats = dataset.statistics()
        assert stats["num_elements"] == dataset.profile.num_elements
        assert stats["average_length"] >= 2.0
        assert stats["average_references"] >= 0.0
        assert stats["num_topics"] == dataset.profile.num_topics

    def test_reference_counts_match_stream(self, dataset):
        counts = dataset.reference_counts()
        total = sum(len(element.references) for element in dataset.stream)
        assert sum(counts.values()) == total

    def test_topical_keywords_come_from_topic(self, dataset):
        keywords = dataset.topical_keywords(0, count=5)
        assert len(keywords) == 5
        theme_name, seeds = TOPIC_THEMES[0]
        del theme_name
        # Seed words are boosted, so at least one top word is a seed word.
        assert any(keyword in seeds for keyword in keywords)

    def test_make_query_from_topic(self, dataset):
        query = dataset.make_query(k=5, topic=2)
        assert query.k == 5
        assert query.vector.shape == (dataset.profile.num_topics,)
        assert query.vector.sum() == pytest.approx(1.0)
        assert int(np.argmax(query.vector)) == 2

    def test_make_query_from_keywords(self, dataset):
        keywords = dataset.topical_keywords(1, count=3)
        query = dataset.make_query(k=4, keywords=keywords)
        assert query.keywords == tuple(keywords)
        assert int(np.argmax(query.vector)) == 1

    def test_make_query_requires_exactly_one_source(self, dataset):
        with pytest.raises(ValueError):
            dataset.make_query(k=3)
        with pytest.raises(ValueError):
            dataset.make_query(k=3, keywords=["a"], topic=1)

    def test_train_topic_model_lda(self, dataset):
        model = dataset.train_topic_model(kind="lda", num_topics=3, iterations=8, seed=1)
        assert model.num_topics == 3
        assert model.validate()

    def test_train_topic_model_invalid_kind(self, dataset):
        with pytest.raises(ValueError):
            dataset.train_topic_model(kind="bogus")

    def test_reference_density_matches_profile(self):
        dataset = SyntheticStreamGenerator.from_profile("tiny", seed=5).generate()
        stats = dataset.statistics()
        expected = dataset.profile.mean_references
        assert stats["average_references"] == pytest.approx(expected, rel=0.5)


class TestLoaders:
    def test_roundtrip(self, tmp_path, tiny_dataset):
        path = tmp_path / "stream.jsonl"
        written = save_stream_jsonl(tiny_dataset.stream, path)
        assert written == len(tiny_dataset.stream)
        loaded = load_stream_jsonl(path)
        assert len(loaded) == len(tiny_dataset.stream)
        for left, right in zip(tiny_dataset.stream, loaded):
            assert left.element_id == right.element_id
            assert left.tokens == right.tokens
            assert left.references == right.references
            np.testing.assert_allclose(left.topic_distribution, right.topic_distribution)

    def test_creates_parent_directories(self, tmp_path, tiny_dataset):
        path = tmp_path / "nested" / "dir" / "stream.jsonl"
        save_stream_jsonl(tiny_dataset.stream.elements[:5], path)
        assert path.exists()
        assert len(load_stream_jsonl(path)) == 5

    def test_skips_blank_lines(self, tmp_path, tiny_dataset):
        path = tmp_path / "stream.jsonl"
        save_stream_jsonl(tiny_dataset.stream.elements[:3], path)
        content = path.read_text() + "\n\n"
        path.write_text(content)
        assert len(load_stream_jsonl(path)) == 3

    def test_invalid_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"element_id": 1, "timestamp": 1}\nnot-json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_stream_jsonl(path)

    def test_unsorted_input_roundtrips_to_sorted_stream(self, tmp_path, tiny_dataset):
        # save writes the iterable verbatim; load re-sorts by default, so
        # the result equals loading the same elements in order.
        elements = list(tiny_dataset.stream.elements[:8])
        path = tmp_path / "unsorted.jsonl"
        save_stream_jsonl(reversed(elements), path)
        loaded = load_stream_jsonl(path)
        assert [e.element_id for e in loaded] == [e.element_id for e in elements]
        assert [e.timestamp for e in loaded] == [e.timestamp for e in elements]

    def test_expect_sorted_rejects_out_of_order_file(self, tmp_path, tiny_dataset):
        elements = list(tiny_dataset.stream.elements[:4])
        path = tmp_path / "unsorted.jsonl"
        save_stream_jsonl([elements[0], elements[2], elements[1]], path)
        with pytest.raises(ValueError, match=r"unsorted\.jsonl:3: out-of-order"):
            load_stream_jsonl(path, expect_sorted=True)

    def test_expect_sorted_accepts_canonical_file(self, tmp_path, tiny_dataset):
        path = tmp_path / "sorted.jsonl"
        save_stream_jsonl(tiny_dataset.stream.elements[:6], path)
        loaded = load_stream_jsonl(path, expect_sorted=True)
        assert len(loaded) == 6

    def test_duplicate_id_names_file_and_line(self, tmp_path, tiny_dataset):
        element = tiny_dataset.stream.elements[0]
        path = tmp_path / "dup.jsonl"
        save_stream_jsonl([element, element], path)
        with pytest.raises(ValueError, match=r"dup\.jsonl:2: duplicate element id"):
            load_stream_jsonl(path)

    def test_invalid_element_names_file_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"timestamp": 1, "tokens": []}\n')
        with pytest.raises(ValueError, match=r"bad\.jsonl:1: invalid element"):
            load_stream_jsonl(path)
