"""Property tests: kernel backends are result-identical on every engine backend.

The acceptance contract of the kernel layer: for random streamed
instances, an engine running the pure-NumPy reference kernels
(``kernels="numpy"``) and one running under ``kernels="auto"`` (the
Numba-compiled variants when the ``[kernels]`` extra is installed, the
reference fallback otherwise) must produce *identical* query answers —
element ids equal, scores within 1e-9 — on the local, sharded and
service execution backends.  When Numba is absent this doubles as the
fallback-parity proof CI's ``kernels-smoke`` job runs on its
without-numba leg.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, KernelConfig, KSIREngine, ServiceConfig
from repro.cluster import ClusterConfig
from repro.kernels import configure_kernels, kernel_mode, numba_available

from tests.conftest import build_reference_stream as build_stream
from tests.test_api_engine import ingest, random_query, small_processor_config


def assert_results_match(a, b):
    """Identical ids and algorithm; scores within the 1e-9 contract.

    Exact float equality would over-assert on the compiled path: Numba
    loops may accumulate in a different order than ``np.add.reduceat``'s
    pairwise summation, which is allowed to differ at the ulp level.
    """
    assert a.element_ids == b.element_ids
    assert a.algorithm == b.algorithm
    assert abs(a.score - b.score) <= 1e-9

#: The numpy reference is compared against every other selectable mode.
#: "auto" resolves to numba when installed (the real compiled-vs-reference
#: proof) and to the reference fallback otherwise (the parity proof).
COMPARE_MODES = ("auto", "numba") if numba_available() else ("auto",)


@pytest.fixture(autouse=True)
def restore_kernel_mode():
    previous = kernel_mode()
    yield
    configure_kernels(previous)


instance_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=6, max_value=12),      # elements
    st.integers(min_value=2, max_value=5),       # topics
    st.integers(min_value=6, max_value=14),      # vocabulary
    st.integers(min_value=2, max_value=4),       # k
)


def run_local(model, elements, config, query, mode):
    engine = KSIREngine(
        model, EngineConfig(processor=config, kernels=KernelConfig(mode=mode))
    )
    ingest(engine, elements, config.bucket_length)
    results = [
        engine.query(query, algorithm=algorithm, epsilon=0.25)
        for algorithm in ("mttd", "greedy")
    ]
    engine.close()
    return results


def run_sharded(model, elements, config, query, mode, shards):
    engine = KSIREngine(
        model,
        EngineConfig(
            backend="sharded",
            processor=config,
            cluster=ClusterConfig(num_shards=shards, backend="serial"),
            kernels=KernelConfig(mode=mode),
        ),
    )
    ingest(engine, elements, config.bucket_length)
    results = [engine.query(query, algorithm="mttd", epsilon=0.25)]
    engine.close()
    return results


def run_service(model, elements, config, query, mode):
    engine = KSIREngine(
        model,
        EngineConfig(
            backend="service",
            processor=config,
            service=ServiceConfig(max_workers=1),
            kernels=KernelConfig(mode=mode),
        ),
    )
    engine.register(query, algorithm="mttd", epsilon=0.25)
    ingest(engine, elements, config.bucket_length)
    results = engine.results()
    engine.close()
    return results


class TestKernelBackendEquivalence:
    @given(params=instance_params)
    @settings(max_examples=20, deadline=None)
    def test_local_backend(self, params):
        seed, n, z, v, k = params
        model, elements = build_stream(seed, n, z, v)
        config = small_processor_config(n)
        query = random_query(seed, z, k)
        reference = run_local(model, elements, config, query, "numpy")
        for mode in COMPARE_MODES:
            candidate = run_local(model, elements, config, query, mode)
            for ours, theirs in zip(reference, candidate):
                assert_results_match(ours, theirs)

    @given(params=instance_params, shards=st.integers(min_value=2, max_value=3))
    @settings(max_examples=12, deadline=None)
    def test_sharded_backend(self, params, shards):
        seed, n, z, v, k = params
        model, elements = build_stream(seed, n, z, v)
        config = small_processor_config(n)
        query = random_query(seed, z, k)
        reference = run_sharded(model, elements, config, query, "numpy", shards)
        for mode in COMPARE_MODES:
            candidate = run_sharded(model, elements, config, query, mode, shards)
            for ours, theirs in zip(reference, candidate):
                assert_results_match(ours, theirs)

    @given(params=instance_params)
    @settings(max_examples=12, deadline=None)
    def test_service_backend(self, params):
        seed, n, z, v, k = params
        model, elements = build_stream(seed, n, z, v)
        config = small_processor_config(n)
        query = random_query(seed, z, k)
        reference = run_service(model, elements, config, query, "numpy")
        for mode in COMPARE_MODES:
            candidate = run_service(model, elements, config, query, mode)
            assert reference.keys() == candidate.keys()
            for query_id in reference:
                assert_results_match(
                    reference[query_id].result, candidate[query_id].result
                )
