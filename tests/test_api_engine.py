"""Facade tests: KSIREngine must be execution-equivalent to direct backends.

The acceptance contract of the api redesign: for every registered
execution backend, a ``KSIREngine`` produces *identical* ``QueryResult``s
to constructing the underlying surface (``KSIRProcessor``,
``ClusterCoordinator``, ``ServiceEngine``) by hand — checked both on a
fixed synthetic dataset and on randomized instances (property test).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, KSIREngine, ServiceConfig, backend_names
from repro.cluster import ClusterConfig, ClusterCoordinator
from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.query import KSIRQuery
from repro.core.scoring import ScoringConfig
from repro.service import ServiceEngine

from tests.conftest import build_processor, build_service_engine
from tests.conftest import build_reference_stream as build_stream


def random_query(seed: int, num_topics: int, k: int) -> KSIRQuery:
    rng = np.random.default_rng(seed + 7919)
    active = int(rng.integers(1, min(3, num_topics) + 1))
    topics = rng.choice(num_topics, size=active, replace=False)
    vector = np.zeros(num_topics)
    vector[topics] = rng.dirichlet(np.ones(active))
    return KSIRQuery(k=k, vector=vector)


def small_processor_config(num_elements: int) -> ProcessorConfig:
    # Window shorter than the stream, so expiry and reactivation trigger.
    return ProcessorConfig(
        window_length=max(3, num_elements // 2),
        bucket_length=2,
        scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
    )


def ingest(target, elements, bucket_length: int) -> None:
    end = elements[-1].timestamp
    bucket_end = elements[0].timestamp + bucket_length - 1
    index = 0
    while True:
        members = []
        while index < len(elements) and elements[index].timestamp <= bucket_end:
            members.append(elements[index])
            index += 1
        target.ingest_bucket(members, bucket_end) if hasattr(
            target, "ingest_bucket"
        ) else target.process_bucket(members, bucket_end)
        if bucket_end >= end and index >= len(elements):
            break
        bucket_end += bucket_length


def assert_results_identical(a, b):
    assert a.element_ids == b.element_ids
    assert a.score == b.score
    assert a.algorithm == b.algorithm
    assert a.evaluated_elements == b.evaluated_elements


@pytest.fixture()
def suppress_deprecations():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        yield


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert set(backend_names()) >= {"local", "sharded", "service"}

    def test_unknown_backend_rejected_by_config(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            EngineConfig(backend="nope")

    def test_unknown_backend_rejected_by_registry(self):
        from repro.api import create_backend

        model, _ = build_stream(0, 4, 2, 6)
        with pytest.raises(ValueError, match="unknown execution backend"):
            create_backend("quantum", model, EngineConfig())

    def test_custom_backend_registration(self):
        from repro.api import create_backend, register_backend

        model, _ = build_stream(0, 4, 2, 6)
        seen = {}

        def factory(topic_model, config, inferencer):
            seen["called"] = True
            from repro.api import LocalBackend

            return LocalBackend(topic_model, config, inferencer)

        register_backend("custom-test", factory)
        try:
            backend = create_backend("custom-test", model, EngineConfig())
            assert seen["called"]
            assert backend.name == "local"
        finally:
            from repro.api.backend import _REGISTRY

            _REGISTRY.pop("custom-test", None)


instance_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=6, max_value=12),      # elements
    st.integers(min_value=2, max_value=5),       # topics
    st.integers(min_value=6, max_value=14),      # vocabulary
    st.integers(min_value=2, max_value=4),       # k
)


class TestFacadeEquivalence:
    """KSIREngine == direct construction, for all three backends."""

    @given(params=instance_params)
    @settings(max_examples=20, deadline=None)
    def test_local_facade_matches_direct_processor(self, params):
        seed, num_elements, num_topics, vocab_size, k = params
        model, elements = build_stream(seed, num_elements, num_topics, vocab_size)
        config = small_processor_config(num_elements)
        query = random_query(seed, num_topics, k)

        engine = KSIREngine(model, EngineConfig(processor=config))
        ingest(engine, elements, config.bucket_length)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            direct = build_processor(model, config)
        ingest(direct, elements, config.bucket_length)

        for algorithm in ("mttd", "greedy"):
            assert_results_identical(
                engine.query(query, algorithm=algorithm, epsilon=0.25),
                direct.query(query, algorithm=algorithm, epsilon=0.25),
            )

    @given(params=instance_params, shards=st.integers(min_value=2, max_value=3))
    @settings(max_examples=15, deadline=None)
    def test_sharded_facade_matches_direct_coordinator(self, params, shards):
        seed, num_elements, num_topics, vocab_size, k = params
        model, elements = build_stream(seed, num_elements, num_topics, vocab_size)
        config = small_processor_config(num_elements)
        cluster = ClusterConfig(num_shards=shards, backend="serial")
        query = random_query(seed, num_topics, k)

        engine = KSIREngine(
            model, EngineConfig(backend="sharded", processor=config, cluster=cluster)
        )
        ingest(engine, elements, config.bucket_length)

        direct = ClusterCoordinator(model, config, cluster=cluster)
        ingest(direct, elements, config.bucket_length)

        assert_results_identical(
            engine.query(query, algorithm="mttd", epsilon=0.25),
            direct.query(query, algorithm="mttd", epsilon=0.25),
        )
        direct.close()
        engine.close()

    @given(params=instance_params)
    @settings(max_examples=15, deadline=None)
    def test_service_facade_matches_direct_service_engine(self, params):
        seed, num_elements, num_topics, vocab_size, k = params
        model, elements = build_stream(seed, num_elements, num_topics, vocab_size)
        config = small_processor_config(num_elements)
        query = random_query(seed, num_topics, k)

        facade = KSIREngine(
            model,
            EngineConfig(
                backend="service",
                processor=config,
                service=ServiceConfig(max_workers=1),
            ),
        )
        facade.register(query, algorithm="mttd", epsilon=0.25)
        ingest(facade, elements, config.bucket_length)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            processor = build_processor(model, config)
            direct = build_service_engine(processor, max_workers=1)
        direct.register(query, algorithm="mttd", epsilon=0.25)
        ingest(direct, elements, config.bucket_length)

        ours, theirs = facade.results(), direct.results()
        assert ours.keys() == theirs.keys()
        for query_id in ours:
            assert_results_identical(ours[query_id].result, theirs[query_id].result)
            assert ours[query_id].evaluations == theirs[query_id].evaluations
        facade.close()
        direct.close()


class TestFacadeSurface:
    def test_standing_queries_require_service_backend(self, tiny_dataset):
        engine = KSIREngine(tiny_dataset.topic_model, EngineConfig())
        with pytest.raises(RuntimeError, match="service"):
            engine.register(tiny_dataset.make_query(k=3, topic=0))
        with pytest.raises(RuntimeError, match="service"):
            engine.results()
        assert engine.service_engine is None

    def test_register_by_keywords_requires_k(self, tiny_dataset):
        engine = KSIREngine(
            tiny_dataset.topic_model, EngineConfig(backend="service")
        )
        with pytest.raises(ValueError, match="k must be provided"):
            engine.register(["music"])
        standing = engine.register(["music"], k=3)
        assert standing.query.k == 3
        engine.close()

    def test_query_keywords_round_trip(self, tiny_dataset):
        engine = KSIREngine(tiny_dataset.topic_model, EngineConfig())
        engine.process_stream(tiny_dataset.stream)
        keywords = tiny_dataset.topical_keywords(topic=0, count=3)
        result = engine.query_keywords(keywords, k=4, algorithm="mttd", epsilon=0.1)
        assert len(result) <= 4
        assert result.algorithm.startswith("mttd")

    def test_stats_carry_backend_name(self, tiny_dataset):
        for backend in ("local", "service"):
            engine = KSIREngine(
                tiny_dataset.topic_model, EngineConfig(backend=backend)
            )
            assert engine.stats()["backend"] == backend
            assert engine.backend_name == backend
            engine.close()

    def test_closed_engine_rejects_work(self, tiny_dataset):
        engine = KSIREngine(tiny_dataset.topic_model, EngineConfig())
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            engine.process_stream(tiny_dataset.stream)
        with pytest.raises(RuntimeError, match="closed"):
            engine.stats()

    def test_closed_service_engine_rejects_standing_queries(self, tiny_dataset):
        engine = KSIREngine(
            tiny_dataset.topic_model, EngineConfig(backend="service")
        )
        engine.close()
        with pytest.raises(RuntimeError, match="closed"):
            engine.register(["music"], k=3)
        with pytest.raises(RuntimeError, match="closed"):
            engine.results()

    def test_snapshot_matches_backend_window(self, tiny_dataset):
        engine = KSIREngine(tiny_dataset.topic_model, EngineConfig())
        engine.process_stream(tiny_dataset.stream)
        snapshot = engine.snapshot()
        assert snapshot.active_count == engine.active_count

    def test_sharded_snapshot_matches_local(self):
        model, elements = build_stream(3, 12, 3, 10)
        config = small_processor_config(12)
        local = KSIREngine(model, EngineConfig(processor=config))
        sharded = KSIREngine(
            model,
            EngineConfig(
                backend="sharded",
                processor=config,
                cluster=ClusterConfig(num_shards=2, backend="serial"),
            ),
        )
        ingest(local, elements, config.bucket_length)
        ingest(sharded, elements, config.bucket_length)
        a, b = local.snapshot(), sharded.snapshot()
        assert sorted(a.active_ids) == sorted(b.active_ids)
        for element_id in a.active_ids:
            assert sorted(a.followers_of(element_id)) == sorted(
                b.followers_of(element_id)
            )
        sharded.close()
