"""Checkpoint/restore tests: save → load → continue == uninterrupted run."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    EngineConfig,
    KSIREngine,
    LocalBackend,
    ServiceBackend,
    ServiceConfig,
    ShardedBackend,
    read_checkpoint,
)
from repro.cluster import ClusterConfig
from repro.core.processor import ProcessorConfig
from repro.core.query import KSIRQuery
from repro.core.scoring import ScoringConfig

from tests.conftest import build_reference_stream

NUM_BUCKETS = 20
BUCKET_LENGTH = 2


def build_stream(seed: int, num_topics: int = 4, vocab_size: int = 18):
    """A random stream spanning exactly NUM_BUCKETS buckets."""
    return build_reference_stream(
        seed, NUM_BUCKETS * BUCKET_LENGTH, num_topics, vocab_size
    )


def buckets_of(elements):
    buckets = []
    for start in range(0, len(elements), BUCKET_LENGTH):
        members = elements[start : start + BUCKET_LENGTH]
        buckets.append((members, members[-1].timestamp))
    return buckets


PROCESSOR = ProcessorConfig(
    window_length=NUM_BUCKETS,  # half the stream span: expiry triggers
    bucket_length=BUCKET_LENGTH,
    scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
)

CONFIGS = {
    "local": EngineConfig(processor=PROCESSOR),
    "sharded": EngineConfig(
        backend="sharded",
        processor=PROCESSOR,
        cluster=ClusterConfig(num_shards=3, backend="serial", partitioner="load-balanced"),
    ),
    "service": EngineConfig(
        backend="service", processor=PROCESSOR, service=ServiceConfig(max_workers=1)
    ),
    "service-sharded": EngineConfig(
        backend="service",
        processor=PROCESSOR,
        cluster=ClusterConfig(num_shards=2, backend="serial"),
        service=ServiceConfig(max_workers=1),
    ),
}


def ranked_list_states(engine: KSIREngine):
    """Every ranked-list index behind an engine, as {topic: {id: score}} maps."""
    backend = engine.backend
    if isinstance(backend, ServiceBackend):
        substrate = backend.engine.backend
        processors = (
            [worker.processor for worker in substrate.workers]
            if hasattr(substrate, "workers")
            else [substrate]
        )
    elif isinstance(backend, ShardedBackend):
        processors = [worker.processor for worker in backend.coordinator.workers]
    else:
        assert isinstance(backend, LocalBackend)
        processors = [backend.processor]
    states = []
    for processor in processors:
        index = processor.ranked_lists
        states.append(
            {
                topic: dict(index.items(topic))
                for topic in range(index.num_topics)
            }
        )
    return states


def assert_ranked_lists_close(a, b, tolerance=1e-9):
    assert len(a) == len(b)
    for state_a, state_b in zip(a, b):
        assert state_a.keys() == state_b.keys()
        for topic in state_a:
            assert state_a[topic].keys() == state_b[topic].keys(), f"topic {topic}"
            for element_id, score in state_a[topic].items():
                assert abs(score - state_b[topic][element_id]) <= tolerance


def make_engine(model, config: EngineConfig, query: KSIRQuery) -> KSIREngine:
    engine = KSIREngine(model, config)
    if config.backend == "service":
        engine.register(query, query_id="standing", algorithm="mttd", epsilon=0.2)
        engine.register(query, query_id="short-lived", ttl_buckets=4)
    return engine


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_save_load_continue_matches_uninterrupted(name, tmp_path):
    config = CONFIGS[name]
    model, elements = build_stream(seed=29)
    buckets = buckets_of(elements)
    query = KSIRQuery(k=4, vector=np.array([0.5, 0.5, 0.0, 0.0]))

    uninterrupted = make_engine(model, config, query)
    for members, end_time in buckets:
        uninterrupted.ingest_bucket(members, end_time)

    first = make_engine(model, config, query)
    for members, end_time in buckets[: NUM_BUCKETS // 2]:
        first.ingest_bucket(members, end_time)
    path = first.save(tmp_path / "ckpt")
    first.close()

    resumed = KSIREngine.load(path)
    assert resumed.backend_name == config.backend
    assert resumed.buckets_processed == NUM_BUCKETS // 2
    for members, end_time in buckets[NUM_BUCKETS // 2 :]:
        resumed.ingest_bucket(members, end_time)

    # Counters and windows line up.
    assert resumed.elements_processed == uninterrupted.elements_processed
    assert resumed.buckets_processed == uninterrupted.buckets_processed
    assert resumed.active_count == uninterrupted.active_count
    assert resumed.current_time == uninterrupted.current_time

    # Ranked-list scores within 1e-9 of the uninterrupted run.
    assert_ranked_lists_close(
        ranked_list_states(resumed), ranked_list_states(uninterrupted)
    )

    # Query answers agree.
    for algorithm in ("mttd", "greedy"):
        a = uninterrupted.query(query, algorithm=algorithm, epsilon=0.2)
        b = resumed.query(query, algorithm=algorithm, epsilon=0.2)
        assert a.element_ids == b.element_ids
        assert abs(a.score - b.score) <= 1e-9

    # Standing-query state survived (service backends only).
    if config.backend == "service":
        ours, theirs = resumed.results(), uninterrupted.results()
        assert ours.keys() == theirs.keys()
        for query_id in theirs:
            assert ours[query_id].result.element_ids == theirs[query_id].result.element_ids
            assert abs(ours[query_id].result.score - theirs[query_id].result.score) <= 1e-9
            assert ours[query_id].evaluations == theirs[query_id].evaluations
        # The TTL query was registered before the checkpoint and must keep
        # its countdown across the restore.
        service = resumed.service_engine
        assert "short-lived" not in service.registry

    uninterrupted.close()
    resumed.close()


def test_checkpoint_is_versioned_on_disk(tmp_path):
    model, elements = build_stream(seed=5)
    engine = KSIREngine(model, CONFIGS["local"])
    for members, end_time in buckets_of(elements)[:4]:
        engine.ingest_bucket(members, end_time)
    path = engine.save(tmp_path / "ckpt")
    manifest = json.loads((path / "MANIFEST.json").read_text())
    assert manifest["format"] == CHECKPOINT_FORMAT
    assert manifest["version"] == CHECKPOINT_VERSION
    assert manifest["backend"] == "local"
    # The columnar default emits its numeric state as the npz member.
    assert (path / "state_arrays.npz").exists()
    payload = read_checkpoint(path)
    assert payload.config == CONFIGS["local"]


def test_missing_checkpoint_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="not a k-SIR checkpoint"):
        read_checkpoint(tmp_path / "nowhere")


def test_foreign_format_rejected(tmp_path):
    directory = tmp_path / "ckpt"
    directory.mkdir()
    (directory / "MANIFEST.json").write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(CheckpointError, match="format marker"):
        read_checkpoint(directory)


def test_corrupt_state_file_rejected(tmp_path):
    model, elements = build_stream(seed=5)
    engine = KSIREngine(model, CONFIGS["local"])
    members, end_time = buckets_of(elements)[0]
    engine.ingest_bucket(members, end_time)
    path = engine.save(tmp_path / "ckpt")
    # A torn write mid-state.json must fail validation, not half-restore.
    (path / "state.json").write_text('{"processor": {"elements')
    with pytest.raises(CheckpointError, match="corrupt"):
        KSIREngine.load(path)


def test_missing_arrays_member_rejected(tmp_path):
    model, elements = build_stream(seed=5)
    engine = KSIREngine(model, CONFIGS["local"])
    members, end_time = buckets_of(elements)[0]
    engine.ingest_bucket(members, end_time)
    path = engine.save(tmp_path / "ckpt")
    # A partial copy that dropped the npz member must fail loudly at read
    # time, not with a KeyError deep inside a restore_state.
    (path / "state_arrays.npz").unlink()
    with pytest.raises(CheckpointError, match="missing state_arrays.npz"):
        read_checkpoint(path)


def test_corrupt_arrays_member_rejected(tmp_path):
    model, elements = build_stream(seed=5)
    engine = KSIREngine(model, CONFIGS["local"])
    members, end_time = buckets_of(elements)[0]
    engine.ingest_bucket(members, end_time)
    path = engine.save(tmp_path / "ckpt")
    victim = path / "state_arrays.npz"
    # A torn copy: the zip container is cut in half.
    victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
    with pytest.raises(CheckpointError, match="corrupt"):
        read_checkpoint(path)


def test_overwrite_invalidates_before_rewriting(tmp_path):
    model, elements = build_stream(seed=5)
    engine = KSIREngine(model, CONFIGS["local"])
    buckets = buckets_of(elements)
    engine.ingest_bucket(*buckets[0])
    path = engine.save(tmp_path / "ckpt")
    engine.ingest_bucket(*buckets[1])
    again = engine.save(tmp_path / "ckpt")  # overwrite in place
    assert again == path
    restored = KSIREngine.load(path)
    assert restored.buckets_processed == 2


def test_newer_version_rejected(tmp_path):
    model, elements = build_stream(seed=5)
    engine = KSIREngine(model, CONFIGS["local"])
    members, end_time = buckets_of(elements)[0]
    engine.ingest_bucket(members, end_time)
    path = engine.save(tmp_path / "ckpt")
    manifest = json.loads((path / "MANIFEST.json").read_text())
    manifest["version"] = 99
    (path / "MANIFEST.json").write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match="version 99"):
        KSIREngine.load(path)


def test_backend_mismatch_rejected(tmp_path):
    model, elements = build_stream(seed=5)
    engine = KSIREngine(model, CONFIGS["local"])
    members, end_time = buckets_of(elements)[0]
    engine.ingest_bucket(members, end_time)
    path = engine.save(tmp_path / "ckpt")
    with pytest.raises(CheckpointError, match="backend"):
        KSIREngine.load(path, config=CONFIGS["sharded"])


def test_window_length_mismatch_rejected(tmp_path):
    model, elements = build_stream(seed=5)
    engine = KSIREngine(model, CONFIGS["local"])
    members, end_time = buckets_of(elements)[0]
    engine.ingest_bucket(members, end_time)
    path = engine.save(tmp_path / "ckpt")
    from dataclasses import replace

    smaller = EngineConfig(
        processor=replace(PROCESSOR, window_length=NUM_BUCKETS * 4)
    )
    with pytest.raises(ValueError, match="window_length"):
        KSIREngine.load(path, config=smaller)


def test_process_fanout_checkpoint_round_trip(tmp_path):
    """Checkpointing round-trips through the worker processes (PR-4 limitation lifted)."""
    model, elements = build_stream(seed=5)
    buckets = buckets_of(elements)
    config = EngineConfig(
        backend="sharded",
        processor=PROCESSOR,
        cluster=ClusterConfig(num_shards=2, backend="process"),
    )
    query = KSIRQuery(k=4, vector=np.array([0.5, 0.5, 0.0, 0.0]))

    uninterrupted = KSIREngine(model, config)
    first = KSIREngine(model, config)
    try:
        for members, end_time in buckets:
            uninterrupted.ingest_bucket(members, end_time)
        for members, end_time in buckets[: NUM_BUCKETS // 2]:
            first.ingest_bucket(members, end_time)
        path = first.save(tmp_path / "ckpt")
    finally:
        first.close()

    resumed = KSIREngine.load(path)
    try:
        assert resumed.buckets_processed == NUM_BUCKETS // 2
        for members, end_time in buckets[NUM_BUCKETS // 2 :]:
            resumed.ingest_bucket(members, end_time)
        assert resumed.elements_processed == uninterrupted.elements_processed
        assert resumed.active_count == uninterrupted.active_count
        assert resumed.current_time == uninterrupted.current_time
        for algorithm in ("mttd", "greedy"):
            a = uninterrupted.query(query, algorithm=algorithm, epsilon=0.2)
            b = resumed.query(query, algorithm=algorithm, epsilon=0.2)
            assert a.element_ids == b.element_ids
            assert abs(a.score - b.score) <= 1e-9
    finally:
        uninterrupted.close()
        resumed.close()
