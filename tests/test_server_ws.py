"""WebSocket push channel of the serving tier.

The contract under test: a subscriber receives a delta within the same
ingest call whenever the incremental scheduler re-evaluated its standing
query — and receives *nothing* for a bucket the scheduler proved
irrelevant.  The orthogonal two-topic model makes "irrelevant" exact: a
pure topic-1 bucket can never touch a pure topic-0 query.
"""

from __future__ import annotations

import pytest
from server_harness import element, ingest_payload, make_engine

from repro.server.app import KSIRServer, create_app
from repro.server.testing import TestClient


@pytest.fixture()
def app() -> KSIRServer:
    application = create_app(make_engine())
    yield application
    application.close()


@pytest.fixture()
def client(app: KSIRServer) -> TestClient:
    with TestClient(app) as test_client:
        yield test_client


class TestPushDelivery:
    def test_delta_within_one_bucket_and_silence_on_noop(
        self, client: TestClient
    ) -> None:
        client.post("/queries", {"vector": [1.0, 0.0], "k": 2, "query_id": "qa"})
        with client.websocket("/ws/queries/qa") as ws:
            assert ws.accepted
            snapshot = ws.receive_json()
            assert snapshot["type"] == "snapshot"
            assert snapshot["result"] is None

            # Result-changing bucket: the delta arrives for that bucket.
            response = client.post(
                "/ingest/bucket", ingest_payload(1, element(1, 1, 0))
            )
            assert response.json()["updated"] == ["qa"]
            delta = ws.receive_json(timeout=10)
            assert delta["type"] == "delta"
            assert delta["query_id"] == "qa"
            assert delta["bucket"] == 1
            assert delta["changed"] is True
            assert delta["element_ids"] == [1]
            assert delta["added"] == [1]
            assert delta["removed"] == []

            # No-op bucket (pure topic 1): provably no push.
            response = client.post(
                "/ingest/bucket", ingest_payload(2, element(2, 2, 1))
            )
            assert response.json()["updated"] == []
            assert ws.expect_nothing(timeout=0.5)

            # A further relevant bucket pushes again with a true delta.
            client.post("/ingest/bucket", ingest_payload(3, element(3, 3, 0)))
            delta = ws.receive_json(timeout=10)
            assert delta["bucket"] == 3
            assert set(delta["added"]).issubset({3})

    def test_snapshot_carries_existing_result(self, client: TestClient) -> None:
        client.post("/queries", {"vector": [1.0, 0.0], "k": 1, "query_id": "qa"})
        client.post("/ingest/bucket", ingest_payload(1, element(1, 1, 0)))
        with client.websocket("/ws/queries/qa") as ws:
            snapshot = ws.receive_json()
            assert snapshot["type"] == "snapshot"
            assert snapshot["result"]["result"]["element_ids"] == [1]

    def test_two_subscribers_both_receive(self, client: TestClient) -> None:
        client.post("/queries", {"vector": [1.0, 0.0], "k": 1, "query_id": "qa"})
        with client.websocket("/ws/queries/qa") as first:
            with client.websocket("/ws/queries/qa") as second:
                first.receive_json()
                second.receive_json()
                client.post("/ingest/bucket", ingest_payload(1, element(1, 1, 0)))
                assert first.receive_json(timeout=10)["type"] == "delta"
                assert second.receive_json(timeout=10)["type"] == "delta"

    def test_subscriber_counted_in_listing(self, client: TestClient) -> None:
        client.post("/queries", {"vector": [1.0, 0.0], "k": 1, "query_id": "qa"})
        with client.websocket("/ws/queries/qa") as ws:
            ws.receive_json()
            entry = client.get("/queries/qa").json()["query"]
            assert entry["subscribers"] == 1
        entry = client.get("/queries/qa").json()["query"]
        assert entry["subscribers"] == 0


class TestSessionLifecycle:
    def test_unknown_query_closes_4404(self, client: TestClient) -> None:
        with client.websocket("/ws/queries/ghost") as ws:
            message = ws.receive_json()
            assert message["type"] == "error"
            assert ws.receive_json() is None
            assert ws.close_code == 4404

    def test_bad_path_closes_without_accept(self, client: TestClient) -> None:
        with client.websocket("/ws/bogus") as ws:
            assert not ws.accepted
            assert ws.close_code == 4400

    def test_unregister_notifies_and_closes(self, client: TestClient) -> None:
        client.post("/queries", {"vector": [1.0, 0.0], "k": 1, "query_id": "qa"})
        with client.websocket("/ws/queries/qa") as ws:
            ws.receive_json()
            client.delete("/queries/qa")
            farewell = ws.receive_json(timeout=10)
            assert farewell["type"] == "unregistered"
            assert ws.receive_json(timeout=10) is None
            assert ws.close_code == 1000

    def test_ttl_expiry_notifies(self, client: TestClient) -> None:
        client.post("/queries", {
            "vector": [1.0, 0.0], "k": 1, "query_id": "qa", "ttl_buckets": 1,
        })
        with client.websocket("/ws/queries/qa") as ws:
            ws.receive_json()
            client.post("/ingest/bucket", ingest_payload(1, element(1, 1, 0)))
            ws.receive_json(timeout=10)  # the bucket-1 delta
            client.post("/ingest/bucket", ingest_payload(2, element(2, 2, 0)))
            farewell = ws.receive_json(timeout=10)
            assert farewell["type"] == "expired"

    def test_session_stats_recorded(self, app: KSIRServer) -> None:
        with TestClient(app) as client:
            client.post("/queries", {"vector": [1.0, 0.0], "k": 1, "query_id": "qa"})
            with client.websocket("/ws/queries/qa") as ws:
                ws.receive_json()
                client.post("/ingest/bucket", ingest_payload(1, element(1, 1, 0)))
                ws.receive_json(timeout=10)
        stats = app.store.ws_stats()
        assert stats["sessions_total"] == 1
        assert stats["sessions_closed"] == 1
        assert stats["pushes_total"] >= 1
