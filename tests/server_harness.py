"""Shared helpers of the serving-tier test modules.

An orthogonal two-topic world: the word ``alpha`` (and a ``[1, 0]``
distribution) lives purely on topic 0, ``beta`` purely on topic 1.  That
makes scheduler relevance exact in tests — a pure topic-1 bucket can
never affect a topic-0 standing query, so "no push" is provable rather
than probabilistic.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from typing import Optional

from repro.api import EngineConfig, KSIREngine
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.streams import StreamConfig
from repro.topics.model import MatrixTopicModel
from repro.topics.vocabulary import Vocabulary


def make_engine(
    window_length: int = 100, streams: Optional[StreamConfig] = None
) -> KSIREngine:
    """A service-backend engine over the orthogonal two-topic model.

    Word probabilities stay strictly inside (0, 1): the semantic score
    weights words by ``-log p(w|z)``-style surprisal, so a degenerate
    ``p = 1`` word would carry zero weight and produce empty answers.
    """
    vocabulary = Vocabulary(["alpha1", "alpha2", "beta1", "beta2"])
    matrix = np.array([
        [0.6, 0.4, 0.0, 0.0],
        [0.0, 0.0, 0.6, 0.4],
    ])
    model = MatrixTopicModel(vocabulary, matrix, normalize=False)
    config = EngineConfig(
        backend="service",
        processor=ProcessorConfig(
            window_length=window_length,
            bucket_length=1,
            scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
        ),
        streams=streams,
    )
    return KSIREngine(model, config)


def element(element_id: int, timestamp: int, topic: int) -> Dict[str, object]:
    """The wire form of one element living purely on ``topic``."""
    return {
        "element_id": element_id,
        "timestamp": timestamp,
        "tokens": ["alpha1", "alpha2"] if topic == 0 else ["beta1", "beta2"],
        "references": [],
        "topic_distribution": [1.0, 0.0] if topic == 0 else [0.0, 1.0],
    }


def ingest_payload(end_time: int, *specs: Dict[str, object]) -> Dict[str, object]:
    """A ``POST /ingest/bucket`` body."""
    return {"end_time": end_time, "elements": list(specs)}
