"""Unit and property tests for the descending sorted list."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.sorted_list import DescendingSortedList


class TestBasicOperations:
    def test_empty_list(self):
        ranked = DescendingSortedList()
        assert len(ranked) == 0
        assert "x" not in ranked
        assert list(ranked) == []
        assert ranked.get("x") is None

    def test_insert_and_contains(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        assert "a" in ranked
        assert ranked.score("a") == 1.0
        assert len(ranked) == 1

    def test_descending_iteration_order(self):
        ranked = DescendingSortedList()
        ranked.insert("low", 1.0)
        ranked.insert("high", 3.0)
        ranked.insert("mid", 2.0)
        assert [key for key, _ in ranked] == ["high", "mid", "low"]
        assert [score for _, score in ranked] == [3.0, 2.0, 1.0]

    def test_ties_broken_by_key(self):
        ranked = DescendingSortedList()
        ranked.insert("b", 1.0)
        ranked.insert("a", 1.0)
        assert ranked.keys() == ["a", "b"]

    def test_insert_replaces_existing(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        ranked.insert("a", 5.0)
        assert len(ranked) == 1
        assert ranked.score("a") == 5.0

    def test_update_moves_position(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        ranked.insert("b", 2.0)
        ranked.update("a", 3.0)
        assert ranked.keys() == ["a", "b"]

    def test_remove(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        ranked.remove("a")
        assert "a" not in ranked
        assert len(ranked) == 0

    def test_remove_missing_raises(self):
        ranked = DescendingSortedList()
        with pytest.raises(KeyError):
            ranked.remove("missing")

    def test_discard_missing_is_noop(self):
        ranked = DescendingSortedList()
        ranked.discard("missing")
        assert len(ranked) == 0

    def test_peek_returns_maximum(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        ranked.insert("b", 9.0)
        assert ranked.peek() == ("b", 9.0)

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            DescendingSortedList().peek()

    def test_at_indexing(self):
        ranked = DescendingSortedList()
        for key, score in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
            ranked.insert(key, score)
        assert ranked.at(0) == ("c", 3.0)
        assert ranked.at(2) == ("a", 1.0)

    def test_items_matches_iteration(self):
        ranked = DescendingSortedList()
        for key, score in [("a", 1.0), ("b", 2.0)]:
            ranked.insert(key, score)
        assert ranked.items() == list(ranked)

    def test_clear(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        ranked.clear()
        assert len(ranked) == 0
        assert ranked.validate()

    def test_negative_and_zero_scores(self):
        ranked = DescendingSortedList()
        ranked.insert("neg", -1.5)
        ranked.insert("zero", 0.0)
        ranked.insert("pos", 2.5)
        assert ranked.keys() == ["pos", "zero", "neg"]


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=30), st.floats(-100, 100)),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_dict(self, operations):
        """Insert/update sequences keep the list consistent with a dict."""
        ranked = DescendingSortedList()
        reference = {}
        for key, score in operations:
            ranked.insert(key, score)
            reference[key] = score
        assert len(ranked) == len(reference)
        assert ranked.validate()
        expected = sorted(reference.items(), key=lambda item: (-item[1], item[0]))
        assert ranked.items() == [(key, score) for key, score in expected]

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "update", "remove"]),
                st.integers(min_value=0, max_value=15),
                st.floats(-50, 50),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mixed_operations_preserve_invariants(self, operations):
        """Arbitrary operation sequences never break the sorted invariant."""
        ranked = DescendingSortedList()
        reference = {}
        for action, key, score in operations:
            if action == "remove":
                ranked.discard(key)
                reference.pop(key, None)
            else:
                ranked.insert(key, score)
                reference[key] = score
            assert ranked.validate()
        assert set(ranked.keys()) == set(reference)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)


class TestBulkInsertProperty:
    """Satellite property: bulk_insert ≡ repeated insert, ties included."""

    @given(
        prefill=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=12),
                st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0]),
            ),
            max_size=40,
        ),
        batch=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                # Few distinct scores, so duplicate scores (ties broken by
                # key — elements sharing the same t_e bucket produce
                # exactly this shape) are the common case, not the edge.
                st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0]),
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_bulk_insert_equals_repeated_insert(self, prefill, batch):
        reference = DescendingSortedList()
        bulk = DescendingSortedList()
        for key, score in prefill:
            reference.insert(key, score)
            bulk.insert(key, score)
        for key, score in batch:
            reference.insert(key, score)
        bulk.bulk_insert(batch)
        assert bulk.items() == reference.items()
        assert bulk.keys() == reference.keys()
        assert bulk.validate() and reference.validate()
