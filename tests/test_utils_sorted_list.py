"""Unit and property tests for the descending sorted list."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import numba_available, use_kernels
from repro.utils.sorted_list import DescendingSortedList

#: Both selectable kernel modes: the reference and (when the [kernels]
#: extra is installed) the compiled ranked_merge variant.
KERNEL_MODES = ["numpy", "auto"] + (["numba"] if numba_available() else [])


class TestBasicOperations:
    def test_empty_list(self):
        ranked = DescendingSortedList()
        assert len(ranked) == 0
        assert "x" not in ranked
        assert list(ranked) == []
        assert ranked.get("x") is None

    def test_insert_and_contains(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        assert "a" in ranked
        assert ranked.score("a") == 1.0
        assert len(ranked) == 1

    def test_descending_iteration_order(self):
        ranked = DescendingSortedList()
        ranked.insert("low", 1.0)
        ranked.insert("high", 3.0)
        ranked.insert("mid", 2.0)
        assert [key for key, _ in ranked] == ["high", "mid", "low"]
        assert [score for _, score in ranked] == [3.0, 2.0, 1.0]

    def test_ties_broken_by_key(self):
        ranked = DescendingSortedList()
        ranked.insert("b", 1.0)
        ranked.insert("a", 1.0)
        assert ranked.keys() == ["a", "b"]

    def test_insert_replaces_existing(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        ranked.insert("a", 5.0)
        assert len(ranked) == 1
        assert ranked.score("a") == 5.0

    def test_update_moves_position(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        ranked.insert("b", 2.0)
        ranked.update("a", 3.0)
        assert ranked.keys() == ["a", "b"]

    def test_remove(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        ranked.remove("a")
        assert "a" not in ranked
        assert len(ranked) == 0

    def test_remove_missing_raises(self):
        ranked = DescendingSortedList()
        with pytest.raises(KeyError):
            ranked.remove("missing")

    def test_discard_missing_is_noop(self):
        ranked = DescendingSortedList()
        ranked.discard("missing")
        assert len(ranked) == 0

    def test_peek_returns_maximum(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        ranked.insert("b", 9.0)
        assert ranked.peek() == ("b", 9.0)

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            DescendingSortedList().peek()

    def test_at_indexing(self):
        ranked = DescendingSortedList()
        for key, score in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
            ranked.insert(key, score)
        assert ranked.at(0) == ("c", 3.0)
        assert ranked.at(2) == ("a", 1.0)

    def test_items_matches_iteration(self):
        ranked = DescendingSortedList()
        for key, score in [("a", 1.0), ("b", 2.0)]:
            ranked.insert(key, score)
        assert ranked.items() == list(ranked)

    def test_clear(self):
        ranked = DescendingSortedList()
        ranked.insert("a", 1.0)
        ranked.clear()
        assert len(ranked) == 0
        assert ranked.validate()

    def test_negative_and_zero_scores(self):
        ranked = DescendingSortedList()
        ranked.insert("neg", -1.5)
        ranked.insert("zero", 0.0)
        ranked.insert("pos", 2.5)
        assert ranked.keys() == ["pos", "zero", "neg"]


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=30), st.floats(-100, 100)),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_reference_dict(self, operations):
        """Insert/update sequences keep the list consistent with a dict."""
        ranked = DescendingSortedList()
        reference = {}
        for key, score in operations:
            ranked.insert(key, score)
            reference[key] = score
        assert len(ranked) == len(reference)
        assert ranked.validate()
        expected = sorted(reference.items(), key=lambda item: (-item[1], item[0]))
        assert ranked.items() == [(key, score) for key, score in expected]

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["insert", "update", "remove"]),
                st.integers(min_value=0, max_value=15),
                st.floats(-50, 50),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_mixed_operations_preserve_invariants(self, operations):
        """Arbitrary operation sequences never break the sorted invariant."""
        ranked = DescendingSortedList()
        reference = {}
        for action, key, score in operations:
            if action == "remove":
                ranked.discard(key)
                reference.pop(key, None)
            else:
                ranked.insert(key, score)
                reference[key] = score
            assert ranked.validate()
        assert set(ranked.keys()) == set(reference)
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)


class TestBulkInsertProperty:
    """Satellite property: bulk_insert ≡ repeated insert, ties included.

    The large-batch branch of ``bulk_insert`` delegates its merge order
    to the ``ranked_merge`` kernel, so the property is checked under
    every selectable kernel mode — the NumPy reference and, when the
    ``[kernels]`` extra is installed, the Numba-compiled variant.
    """

    @pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
    @given(
        prefill=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=12),
                st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0]),
            ),
            max_size=40,
        ),
        batch=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                # Few distinct scores, so duplicate scores (ties broken by
                # key — elements sharing the same t_e bucket produce
                # exactly this shape) are the common case, not the edge.
                st.sampled_from([0.0, 0.25, 0.5, 1.0, 2.0]),
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_bulk_insert_equals_repeated_insert(self, kernel_mode, prefill, batch):
        with use_kernels(kernel_mode):
            reference = DescendingSortedList()
            bulk = DescendingSortedList()
            for key, score in prefill:
                reference.insert(key, score)
                bulk.insert(key, score)
            for key, score in batch:
                reference.insert(key, score)
            bulk.bulk_insert(batch)
        assert bulk.items() == reference.items()
        assert bulk.keys() == reference.keys()
        assert bulk.validate() and reference.validate()


class TestBulkInsertTieBreak:
    """Equal scores must resolve by ascending key on every merge path."""

    @pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
    def test_large_batch_ties_resolve_by_key(self, kernel_mode):
        # 32 staged entries against an empty list takes the kernel-merge
        # branch (int keys → ranked_merge permutation), and every score
        # collides with exactly one other key.
        batch = [(key, float(key % 16)) for key in range(32)]
        with use_kernels(kernel_mode):
            ranked = DescendingSortedList()
            ranked.bulk_insert(batch)
        expected = sorted(batch, key=lambda item: (-item[1], item[0]))
        assert ranked.items() == expected
        assert ranked.validate()

    @pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
    def test_all_scores_equal(self, kernel_mode):
        with use_kernels(kernel_mode):
            ranked = DescendingSortedList()
            ranked.bulk_insert((key, 1.0) for key in (9, 3, 27, 0, 14, 5, 21, 8, 2))
        assert ranked.keys() == [0, 2, 3, 5, 8, 9, 14, 21, 27]

    @pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
    def test_signed_zero_scores_tie(self, kernel_mode):
        """-0.0 and 0.0 compare equal, so the key decides — both paths."""
        batch = [(3, -0.0), (1, 0.0), (2, -0.0), (0, 0.0)] + [
            (key, 1.0) for key in range(4, 16)
        ]
        with use_kernels(kernel_mode):
            ranked = DescendingSortedList()
            ranked.bulk_insert(batch)
        assert ranked.keys()[-4:] == [0, 1, 2, 3]

    def test_non_int_keys_fall_back_to_python_sort(self):
        batch = [(f"k{index:02d}", float(index % 4)) for index in range(24)]
        ranked = DescendingSortedList()
        ranked.bulk_insert(batch)
        assert ranked.items() == sorted(batch, key=lambda item: (-item[1], item[0]))

    def test_oversized_int_keys_fall_back_to_python_sort(self):
        # Keys beyond int64 overflow np.fromiter; bulk_insert must fall
        # back to the pure-Python merge and still honour the tie-break.
        huge = 2**70
        batch = [(huge + index, float(index % 3)) for index in range(16)]
        ranked = DescendingSortedList()
        ranked.bulk_insert(batch)
        assert ranked.items() == sorted(batch, key=lambda item: (-item[1], item[0]))
        assert ranked.validate()

    @pytest.mark.parametrize("kernel_mode", KERNEL_MODES)
    def test_merge_with_existing_entries_preserves_tie_order(self, kernel_mode):
        with use_kernels(kernel_mode):
            ranked = DescendingSortedList()
            for key in (4, 10):
                ranked.insert(key, 2.0)
            ranked.bulk_insert(
                [(7, 2.0), (1, 2.0)] + [(key, 0.5) for key in range(20, 34)]
            )
        assert ranked.keys()[:4] == [1, 4, 7, 10]
