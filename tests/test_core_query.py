"""Tests for the query / result value objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import KSIRQuery, QueryResult


class TestKSIRQuery:
    def test_vector_is_normalised(self):
        query = KSIRQuery(k=5, vector=np.array([2.0, 2.0]))
        np.testing.assert_allclose(query.vector, [0.5, 0.5])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            KSIRQuery(k=0, vector=np.array([1.0]))

    def test_invalid_vectors(self):
        with pytest.raises(ValueError):
            KSIRQuery(k=1, vector=np.array([[1.0, 0.0]]))
        with pytest.raises(ValueError):
            KSIRQuery(k=1, vector=np.array([-0.5, 1.5]))
        with pytest.raises(ValueError):
            KSIRQuery(k=1, vector=np.array([0.0, 0.0]))

    def test_nonzero_topics(self):
        query = KSIRQuery(k=3, vector=np.array([0.0, 0.7, 0.0, 0.3]))
        assert query.nonzero_topics == (1, 3)
        assert query.num_topics == 4

    def test_keywords_stored_as_tuple(self):
        query = KSIRQuery(k=3, vector=np.array([1.0]), keywords=["a", "b"])
        assert query.keywords == ("a", "b")

    def test_time_defaults_to_none(self):
        assert KSIRQuery(k=1, vector=np.array([1.0])).time is None


class TestQueryResult:
    def make_result(self, **kwargs):
        defaults = dict(
            element_ids=(3, 1),
            score=0.65,
            algorithm="mttd",
            elapsed_ms=1.5,
            evaluated_elements=4,
            active_elements=8,
        )
        defaults.update(kwargs)
        return QueryResult(**defaults)

    def test_basic_accessors(self):
        result = self.make_result()
        assert len(result) == 2
        assert list(result) == [3, 1]
        assert result.score == 0.65

    def test_evaluation_ratio(self):
        assert self.make_result().evaluation_ratio == pytest.approx(0.5)
        assert self.make_result(active_elements=0).evaluation_ratio == 0.0

    def test_summary_mentions_algorithm_and_score(self):
        text = self.make_result().summary()
        assert "mttd" in text
        assert "0.65" in text

    def test_extras_default_empty(self):
        assert self.make_result().extras == {}
