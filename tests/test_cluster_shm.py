"""The shared-memory cluster transport: arenas, codec, registry, lifecycle.

Four layers of coverage:

* the packed-buffer codec and :class:`SharedColumnArena` segment lifecycle
  (creation, generational grow, retirement, unlink) — pure unit tests;
* the :class:`~repro.cluster.transport.TransportBackend` registry — aliases,
  unknown names, third-party registration, ``ClusterConfig`` resolution;
* segment-leak checks: ``/dev/shm`` must hold zero ``ksir-*`` segments after
  engine close, worker restart, and SIGKILL recovery (the coordinator owns
  every segment; workers only attach, so a killed worker cannot leak);
* equivalence: the shm transport must answer exactly like the pipe transport
  and a single-node processor (ids identical, scores within 1e-9), driven
  over random instances by hypothesis.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, KSIREngine
from repro.cluster import (
    ClusterConfig,
    canonical_transport_name,
    create_transport,
    register_transport,
    transport_names,
    verify_equivalence,
)
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.merge import merge_candidate_pools
from repro.cluster.shm import (
    COLUMN_KEYS,
    ArenaView,
    SharedColumnArena,
    column_spec,
    new_session_token,
    pack_arrays,
    packed_size,
    scan_segments,
    unpack_arrays,
)
from repro.cluster.shm_backend import ShmProcessFanout
from repro.cluster.worker import CandidatePool
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ElementProfile, ScoringConfig
from repro.ha.chaos import kill_worker
from tests.conftest import build_processor, build_reference_stream
from tests.test_cluster_equivalence import random_query

CONFIG = ProcessorConfig(
    window_length=8,
    bucket_length=2,
    scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
)


def shm_cluster(num_shards: int = 2, **kwargs) -> ClusterConfig:
    return ClusterConfig(num_shards=num_shards, transport="shm", **kwargs)


# ---------------------------------------------------------------------------
# Packed-buffer codec
# ---------------------------------------------------------------------------


class TestPackedBuffers:
    def test_round_trip_preserves_arrays_and_order(self):
        rng = np.random.default_rng(5)
        arrays = [
            ("ids", rng.integers(0, 100, size=7).astype(np.int64)),
            ("vals", rng.random(11)),
            ("empty", np.zeros(0, dtype=np.int64)),
            ("flags", rng.random(4) > 0.5),
        ]
        buffer = np.zeros(packed_size(arrays), dtype=np.uint8)
        pack_arrays(buffer, arrays)
        decoded = unpack_arrays(buffer, [(k, a.dtype, a.shape) for k, a in arrays])
        assert list(decoded) == [key for key, _ in arrays]
        for key, original in arrays:
            np.testing.assert_array_equal(decoded[key], original)

    def test_sections_are_sixteen_byte_aligned(self):
        arrays = [
            ("a", np.arange(3, dtype=np.int64)),
            ("b", np.arange(5, dtype=np.float64)),
        ]
        size = packed_size(arrays)
        # 3*8 = 24 → padded to 32 so "b" starts 16-aligned, plus 5*8 = 40.
        assert size == 72
        buffer = np.zeros(size, dtype=np.uint8)
        header = pack_arrays(buffer, arrays)
        decoded = unpack_arrays(buffer, header)
        base = buffer.__array_interface__["data"][0]
        assert decoded["b"].__array_interface__["data"][0] - base == 32

    def test_unpacked_views_are_zero_copy(self):
        arrays = [("a", np.arange(4, dtype=np.int64))]
        buffer = np.zeros(packed_size(arrays), dtype=np.uint8)
        pack_arrays(buffer, arrays)
        view = unpack_arrays(buffer, [("a", np.dtype(np.int64), (4,))])["a"]
        buffer[:8] = 0
        assert view[0] == 0  # the view aliases the buffer


# ---------------------------------------------------------------------------
# Arena lifecycle
# ---------------------------------------------------------------------------


class TestSharedColumnArena:
    def test_create_grow_and_unlink_lifecycle(self):
        session = new_session_token()
        arena = SharedColumnArena(session, shard_id=0)
        try:
            array = arena.create("ids", (4,), np.dtype(np.int64), fill=-1)
            assert array.tolist() == [-1, -1, -1, -1]
            array[:2] = [7, 9]

            segments = scan_segments(session)
            assert len(segments) == 1 and "-ids-g0" in segments[0]

            grown = arena.grow("ids", (8,), copy=True, fill=-1)
            assert grown.tolist() == [7, 9, -1, -1, -1, -1, -1, -1]
            # Old generation retired but still linked until confirmed.
            assert len(scan_segments(session)) == 2
            arena.unlink_retired()
            segments = scan_segments(session)
            assert len(segments) == 1 and "-ids-g1" in segments[0]
        finally:
            arena.close(unlink=True)
        assert scan_segments(session) == []

    def test_view_attaches_and_shares_writes(self):
        session = new_session_token()
        arena = SharedColumnArena(session, shard_id=1)
        try:
            arena.create("ts", (6,), np.dtype(np.int64), fill=0)
            view = ArenaView(arena.manifest())
            try:
                arena.array("ts")[3] = 42
                assert view.array("ts")[3] == 42  # same physical memory
                view.array("ts")[3] = 43
                assert arena.array("ts")[3] == 43
            finally:
                view.close()
        finally:
            arena.close(unlink=True)

    def test_view_refresh_reports_only_changed_keys(self):
        session = new_session_token()
        arena = SharedColumnArena(session, shard_id=0)
        try:
            arena.create("ids", (4,), np.dtype(np.int64), fill=-1)
            arena.create("out", (64,), np.dtype(np.uint8))
            view = ArenaView(arena.manifest())
            try:
                assert view.refresh(arena.manifest()) == ()
                arena.grow("out", (128,), copy=False)
                changed = view.refresh(arena.manifest())
                assert changed == ("out",)
                assert view.array("out").shape == (128,)
            finally:
                view.close()
        finally:
            arena.close(unlink=True)

    def test_column_spec_covers_every_store_column(self):
        spec = column_spec(capacity=16, num_topics=3)
        assert set(spec) == set(COLUMN_KEYS)
        shape, dtype, fill = spec["prof"]
        assert shape == (16, 3) and dtype == np.dtype(np.float64) and fill == 0.0


# ---------------------------------------------------------------------------
# Transport registry
# ---------------------------------------------------------------------------


class TestTransportRegistry:
    def test_builtin_transports_are_registered(self):
        names = transport_names()
        for name in ("serial", "thread", "pipe", "shm"):
            assert name in names

    def test_legacy_backend_aliases_resolve(self):
        assert canonical_transport_name("process") == "pipe"
        assert canonical_transport_name("process-pipe") == "pipe"
        assert canonical_transport_name("process-shm") == "shm"

    def test_unknown_transport_is_an_error(self, paper_topic_model):
        with pytest.raises(ValueError, match="unknown cluster transport"):
            config = ProcessorConfig(window_length=4, bucket_length=1)
            ClusterCoordinator(
                paper_topic_model,
                config,
                cluster=ClusterConfig(num_shards=2, transport="carrier-pigeon"),
            )

    def test_effective_transport_defaults_to_the_backend(self):
        assert ClusterConfig(backend="thread").effective_transport == "thread"
        assert ClusterConfig(backend="process").effective_transport == "pipe"

    def test_transport_overrides_the_backend(self):
        config = ClusterConfig(backend="process", transport="shm")
        assert config.effective_transport == "shm"

    def test_third_party_registration(self, paper_topic_model):
        calls = []

        def factory(coordinator):
            calls.append(coordinator)
            return create_transport("serial", coordinator)

        register_transport("test-custom", factory)
        try:
            config = ProcessorConfig(window_length=4, bucket_length=1)
            coordinator = ClusterCoordinator(
                paper_topic_model,
                config,
                cluster=ClusterConfig(num_shards=2, transport="test-custom"),
            )
            coordinator.close()
            assert calls == [coordinator]
        finally:
            from repro.cluster import transport as transport_module

            transport_module._REGISTRY.pop("test-custom", None)

    def test_shm_requires_the_columnar_store(self, paper_topic_model):
        config = ProcessorConfig(window_length=4, bucket_length=1, store="objects")
        with pytest.raises(ValueError, match="columnar"):
            ClusterCoordinator(
                paper_topic_model, config, cluster=shm_cluster(num_shards=2)
            )
        assert scan_segments() == []


# ---------------------------------------------------------------------------
# Merge guard: stripped follower profiles must not shadow full ones
# ---------------------------------------------------------------------------


def _profile(element_id: int, stripped: bool) -> ElementProfile:
    return ElementProfile(
        element_id=element_id,
        timestamp=element_id,
        topic_probabilities={0: 0.5},
        word_weights={} if stripped else {0: {1: 0.25}},
        semantic_scores={} if stripped else {0: 0.25},
        references=(),
    )


def _pool(shard_id: int, candidates, profiles) -> CandidatePool:
    return CandidatePool(
        shard_id=shard_id,
        candidate_ids=tuple(candidates),
        scores={eid: {0: 1.0} for eid in candidates},
        activity={eid: eid for eid in candidates},
        followers={eid: () for eid in candidates},
        profiles=profiles,
    )


class TestMergeGuard:
    def test_stripped_follower_does_not_shadow_full_candidate(self):
        # Element 5 is a full candidate in pool 0 and a stripped follower
        # profile in pool 1 (shm follower exports carry no word weights).
        pools = [
            _pool(0, [5], {5: _profile(5, stripped=False)}),
            _pool(1, [6], {6: _profile(6, stripped=False), 5: _profile(5, stripped=True)}),
        ]
        context, _ = merge_candidate_pools(pools, num_topics=1, config=CONFIG.scoring)
        assert context.profile(5).word_weights == {0: {1: 0.25}}

    def test_full_profile_replaces_an_earlier_stripped_one(self):
        pools = [
            _pool(0, [6], {6: _profile(6, stripped=False), 5: _profile(5, stripped=True)}),
            _pool(1, [5], {5: _profile(5, stripped=False)}),
        ]
        context, _ = merge_candidate_pools(pools, num_topics=1, config=CONFIG.scoring)
        assert context.profile(5).word_weights == {0: {1: 0.25}}


# ---------------------------------------------------------------------------
# Segment-leak checks (process-spawning; coordinator owns every segment)
# ---------------------------------------------------------------------------


class TestSegmentLifecycle:
    def test_engine_close_leaves_no_segments(self):
        model, elements = build_reference_stream(31, 30, 3, 12)
        engine = KSIREngine(
            model,
            EngineConfig(backend="sharded", processor=CONFIG, cluster=shm_cluster()),
        )
        for element in elements:
            engine.ingest_bucket([element], element.timestamp)
        assert scan_segments() != []  # live cluster holds segments
        engine.close()
        assert scan_segments() == []
        engine.close()  # idempotent

    def test_failed_construction_leaves_no_segments(self, paper_topic_model):
        bad = ProcessorConfig(window_length=4, bucket_length=1, store="objects")
        with pytest.raises(ValueError):
            ShmProcessFanout(2, paper_topic_model, bad)
        assert scan_segments() == []

    def test_sigkill_recovery_leaves_no_segments(self):
        model, elements = build_reference_stream(37, 24, 3, 12)
        coordinator = ClusterCoordinator(
            model, CONFIG, cluster=shm_cluster(num_shards=2, backend="process")
        )
        try:
            mid = len(elements) // 2
            for element in elements[:mid]:
                coordinator.process_bucket([element], element.timestamp)
            checkpoint = coordinator.state_dict()

            kill_worker(coordinator, 1)
            fanout = coordinator.fanout
            assert isinstance(fanout, ShmProcessFanout)
            assert fanout.ping() == [True, False]
            fanout.restart_shard(1)
            coordinator.restore_state(checkpoint)
            for element in elements[mid:]:
                coordinator.process_bucket([element], element.timestamp)

            result = coordinator.query(random_query(37, 3, 3), algorithm="mttd", epsilon=0.1)
            single = build_processor(model, CONFIG)
            single.process_stream(elements)
            expected = single.query(random_query(37, 3, 3), algorithm="mttd", epsilon=0.1)
            assert set(result.element_ids) == set(expected.element_ids)
            assert result.score == pytest.approx(expected.score, abs=1e-9)
        finally:
            coordinator.close()
        assert scan_segments() == []

    def test_no_resource_tracker_leak_warnings_at_interpreter_exit(self):
        """A full engine lifecycle must not trip the shm resource tracker."""
        script = textwrap.dedent(
            """
            from repro.api import EngineConfig, KSIREngine
            from repro.cluster import ClusterConfig
            from repro.core.processor import ProcessorConfig
            from repro.core.scoring import ScoringConfig
            from tests.conftest import build_reference_stream

            config = ProcessorConfig(
                window_length=8, bucket_length=2,
                scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
            )
            model, elements = build_reference_stream(41, 20, 3, 12)
            engine = KSIREngine(model, EngineConfig(
                backend="sharded", processor=config,
                cluster=ClusterConfig(num_shards=2, transport="shm"),
            ))
            for element in elements:
                engine.ingest_bucket([element], element.timestamp)
            engine.close()
            """
        )
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(
                None,
                [
                    os.path.join(repo_root, "src"),
                    repo_root,
                    env.get("PYTHONPATH", ""),
                ],
            )
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=repo_root,
            env=env,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "leaked shared_memory" not in completed.stderr, completed.stderr


# ---------------------------------------------------------------------------
# Equivalence: shm == pipe == single node
# ---------------------------------------------------------------------------


class TestShmEquivalence:
    def test_shm_matches_pipe_and_single_node_exactly(self):
        model, elements = build_reference_stream(43, 36, 4, 14)
        queries = [random_query(43 + i, 4, 3) for i in range(3)]

        single = build_processor(model, CONFIG)
        pipe = ClusterCoordinator(
            model, CONFIG, cluster=ClusterConfig(num_shards=2, transport="pipe")
        )
        shm = ClusterCoordinator(model, CONFIG, cluster=shm_cluster(num_shards=2))
        try:
            for element in elements:
                single.process_bucket([element], element.timestamp)
                pipe.process_bucket([element], element.timestamp)
                shm.process_bucket([element], element.timestamp)
            assert shm.active_count == pipe.active_count == single.active_count
            for query in queries:
                for algorithm in ("mttd", "greedy"):
                    a = single.query(query, algorithm=algorithm, epsilon=0.1)
                    b = pipe.query(query, algorithm=algorithm, epsilon=0.1)
                    c = shm.query(query, algorithm=algorithm, epsilon=0.1)
                    assert set(c.element_ids) == set(a.element_ids)
                    assert set(c.element_ids) == set(b.element_ids)
                    assert c.score == pytest.approx(a.score, abs=1e-9)
                    assert c.score == pytest.approx(b.score, abs=1e-9)
        finally:
            pipe.close()
            shm.close()
        assert scan_segments() == []

    def test_checkpoint_round_trip_through_shm(self):
        model, elements = build_reference_stream(47, 28, 3, 12)
        first = ClusterCoordinator(model, CONFIG, cluster=shm_cluster(num_shards=2))
        try:
            mid = len(elements) // 2
            for element in elements[:mid]:
                first.process_bucket([element], element.timestamp)
            state = first.state_dict()
        finally:
            first.close()

        second = ClusterCoordinator(model, CONFIG, cluster=shm_cluster(num_shards=2))
        single = build_processor(model, CONFIG)
        try:
            second.restore_state(state)
            for element in elements:
                single.process_bucket([element], element.timestamp)
            for element in elements[mid:]:
                second.process_bucket([element], element.timestamp)
            query = random_query(47, 3, 3)
            restored = second.query(query, algorithm="mttd", epsilon=0.1)
            expected = single.query(query, algorithm="mttd", epsilon=0.1)
            assert set(restored.element_ids) == set(expected.element_ids)
            assert restored.score == pytest.approx(expected.score, abs=1e-9)
        finally:
            second.close()
        assert scan_segments() == []

    @given(
        params=st.tuples(
            st.integers(min_value=0, max_value=10_000),  # seed
            st.integers(min_value=8, max_value=14),      # elements
            st.integers(min_value=2, max_value=4),       # topics
            st.integers(min_value=6, max_value=12),      # vocabulary
            st.integers(min_value=2, max_value=3),       # k
            st.integers(min_value=2, max_value=3),       # shards
            st.sampled_from(["hash", "round-robin", "load-balanced"]),
        )
    )
    @settings(max_examples=5, deadline=None)
    def test_random_instances_match_single_node(self, params):
        seed, n, z, v, k, shards, partitioner = params
        model, elements = build_reference_stream(seed, n, z, v)
        config = ProcessorConfig(
            window_length=max(3, n // 2),
            bucket_length=2,
            scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
        )
        report = verify_equivalence(
            elements,
            model,
            queries=[random_query(seed, z, k)],
            config=config,
            cluster=ClusterConfig(
                num_shards=shards, partitioner=partitioner, transport="shm"
            ),
            algorithms=("mttd", "mtts", "greedy", "celf"),
            epsilon=0.1,
        )
        assert report.active_single == report.active_cluster
        assert report.matched, "; ".join(
            f"[{c.algorithm}] {c.detail}" for c in report.mismatches
        )
        assert scan_segments() == []


# ---------------------------------------------------------------------------
# Growth paths under tiny initial capacities
# ---------------------------------------------------------------------------


def _tiny_shm_transport(coordinator):
    return ShmProcessFanout(
        coordinator.num_shards,
        coordinator.topic_model,
        coordinator.config,
        initial_rows=4,
        initial_buffer_bytes=32,
    )


class TestTinyCapacityGrowth:
    def test_rows_and_buffers_grow_transparently(self):
        register_transport("shm-tiny", _tiny_shm_transport)
        try:
            model, elements = build_reference_stream(61, 40, 3, 12)
            single = build_processor(model, CONFIG)
            coordinator = ClusterCoordinator(
                model, CONFIG, cluster=ClusterConfig(num_shards=2, transport="shm-tiny")
            )
            try:
                for element in elements:
                    single.process_bucket([element], element.timestamp)
                    coordinator.process_bucket([element], element.timestamp)
                assert coordinator.active_count == single.active_count
                query = random_query(61, 3, 3)
                got = coordinator.query(query, algorithm="mttd", epsilon=0.1)
                expected = single.query(query, algorithm="mttd", epsilon=0.1)
                assert set(got.element_ids) == set(expected.element_ids)
                assert got.score == pytest.approx(expected.score, abs=1e-9)
            finally:
                coordinator.close()
            assert scan_segments() == []
        finally:
            from repro.cluster import transport as transport_module

            transport_module._REGISTRY.pop("shm-tiny", None)
