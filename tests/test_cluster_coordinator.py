"""Tests for the shard workers, the cluster coordinator and the service seam."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterCoordinator
from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.core.stream import SocialStream
from repro.service import ServiceEngine
from tests.conftest import build_processor, build_service_engine

TINY_CONFIG = ProcessorConfig(
    window_length=3 * 3600,
    bucket_length=900,
    scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
)


@pytest.fixture(scope="module")
def replayed(tiny_dataset):
    """The tiny stream replayed on a single node and on a 3-shard cluster."""
    single = build_processor(tiny_dataset.topic_model, TINY_CONFIG)
    single.process_stream(tiny_dataset.stream)
    coordinator = ClusterCoordinator(
        tiny_dataset.topic_model,
        TINY_CONFIG,
        cluster=ClusterConfig(num_shards=3, backend="serial"),
    )
    coordinator.process_stream(tiny_dataset.stream)
    yield single, coordinator
    coordinator.close()


class TestClusterConfig:
    def test_backend_validated(self):
        with pytest.raises(ValueError, match="backend"):
            ClusterConfig(backend="carrier-pigeon")

    def test_budget_derivation(self):
        config = ClusterConfig()
        assert config.derive_budget(k=5, epsilon=0.1) == 50
        assert config.derive_budget(k=5, epsilon=0.9) == 6
        fixed = ClusterConfig(candidate_budget=7)
        assert fixed.derive_budget(k=5, epsilon=0.1) == 7
        scaled = ClusterConfig(budget_scale=2.0)
        assert scaled.derive_budget(k=5, epsilon=0.1) == 100


class TestCoordinatorIngestion:
    def test_active_count_matches_single_node(self, replayed):
        single, coordinator = replayed
        assert coordinator.active_count == single.active_count
        assert coordinator.elements_processed == single.elements_processed
        assert coordinator.current_time == single.current_time
        assert coordinator.buckets_processed == single.buckets_processed

    def test_every_active_element_is_home_somewhere(self, replayed):
        single, coordinator = replayed
        home_ids = set()
        for worker in coordinator.workers:
            index = worker.processor.ranked_lists
            ids = {
                eid for topic in range(index.num_topics)
                for eid, _score in index.items(topic)
            }
            assert home_ids.isdisjoint(ids), "ranked lists overlap across shards"
            home_ids.update(ids)
        single_ids = {
            eid for topic in range(single.ranked_lists.num_topics)
            for eid, _score in single.ranked_lists.items(topic)
        }
        assert home_ids == single_ids

    def test_stored_scores_match_single_node(self, replayed):
        single, coordinator = replayed
        for worker in coordinator.workers:
            index = worker.processor.ranked_lists
            for topic in range(index.num_topics):
                for element_id, score in index.items(topic):
                    assert score == pytest.approx(
                        single.ranked_lists.score(topic, element_id), abs=1e-9
                    )

    def test_shard_stats_accounting(self, replayed):
        _single, coordinator = replayed
        stats = coordinator.shard_stats()
        assert len(stats) == 3
        assert sum(s.home_elements for s in stats) == coordinator.elements_processed
        assert all(s.foreign_elements >= 0 for s in stats)
        assert sum(s.active_home for s in stats) == coordinator.active_count

    def test_dirty_topics_union(self, tiny_dataset):
        with ClusterCoordinator(
            tiny_dataset.topic_model,
            TINY_CONFIG,
            cluster=ClusterConfig(num_shards=2, backend="serial"),
        ) as coordinator:
            stream = SocialStream(tiny_dataset.stream.elements[:40])
            coordinator.process_stream(stream)
            dirty = coordinator.take_dirty_topics()
            assert len(dirty) > 0
            # Drained: a second take returns nothing new.
            assert coordinator.take_dirty_topics() == ()

    def test_closed_coordinator_rejects_work(self, tiny_dataset):
        coordinator = ClusterCoordinator(
            tiny_dataset.topic_model,
            TINY_CONFIG,
            cluster=ClusterConfig(num_shards=2, backend="serial"),
        )
        coordinator.close()
        with pytest.raises(RuntimeError):
            coordinator.process_bucket([], end_time=900)
        with pytest.raises(RuntimeError):
            coordinator.query(np.full(tiny_dataset.topic_model.num_topics, 1.0), k=2)


class TestCoordinatorQueries:
    @pytest.mark.parametrize("algorithm", ["mttd", "mtts", "greedy", "celf"])
    def test_query_matches_single_node(self, replayed, tiny_dataset, algorithm):
        single, coordinator = replayed
        query = tiny_dataset.make_query(k=5, topic=2)
        expected = single.query(query, algorithm=algorithm, epsilon=0.1)
        actual = coordinator.query(query, algorithm=algorithm, epsilon=0.1)
        assert set(actual.element_ids) == set(expected.element_ids)
        assert actual.score == pytest.approx(expected.score, abs=1e-9)
        assert actual.extras["shards"] == 3.0
        assert actual.active_elements == single.active_count

    def test_raw_vector_requires_k(self, replayed, tiny_dataset):
        _single, coordinator = replayed
        vector = np.full(tiny_dataset.topic_model.num_topics, 1.0)
        with pytest.raises(ValueError, match="k must be provided"):
            coordinator.query(vector)
        result = coordinator.query(vector, k=3)
        assert len(result) <= 3

    def test_bounded_candidate_budget_still_returns(self, tiny_dataset):
        with ClusterCoordinator(
            tiny_dataset.topic_model,
            TINY_CONFIG,
            cluster=ClusterConfig(
                num_shards=2, backend="serial", candidate_budget=2
            ),
        ) as coordinator:
            coordinator.process_stream(tiny_dataset.stream)
            result = coordinator.query(tiny_dataset.make_query(k=4, topic=0))
            assert len(result) <= 4
            # At most budget × shards candidates are merged.
            assert result.extras["merged_candidates"] <= 4

    def test_thread_backend_equals_serial(self, tiny_dataset):
        results = {}
        for backend in ("serial", "thread"):
            with ClusterCoordinator(
                tiny_dataset.topic_model,
                TINY_CONFIG,
                cluster=ClusterConfig(num_shards=4, backend=backend),
            ) as coordinator:
                coordinator.process_stream(tiny_dataset.stream)
                result = coordinator.query(tiny_dataset.make_query(k=5, topic=1))
                results[backend] = (set(result.element_ids), result.score)
        assert results["serial"][0] == results["thread"][0]
        assert results["serial"][1] == pytest.approx(results["thread"][1], abs=1e-12)


class TestProcessBackend:
    def test_process_backend_matches_single_node(self, tiny_dataset):
        stream = SocialStream(tiny_dataset.stream.elements[:120])
        single = build_processor(tiny_dataset.topic_model, TINY_CONFIG)
        single.process_stream(stream)
        with ClusterCoordinator(
            tiny_dataset.topic_model,
            TINY_CONFIG,
            cluster=ClusterConfig(num_shards=2, backend="process"),
        ) as coordinator:
            coordinator.process_stream(stream)
            assert coordinator.active_count == single.active_count
            query = tiny_dataset.make_query(k=4, topic=3)
            expected = single.query(query, algorithm="mttd", epsilon=0.1)
            actual = coordinator.query(query, algorithm="mttd", epsilon=0.1)
            assert set(actual.element_ids) == set(expected.element_ids)
            assert actual.score == pytest.approx(expected.score, abs=1e-9)


class TestServiceEngineClusterBackend:
    def test_standing_results_match_single_node_engine(self, tiny_dataset):
        queries = [tiny_dataset.make_query(k=4, topic=t) for t in range(4)]

        single_processor = build_processor(tiny_dataset.topic_model, TINY_CONFIG)
        with build_service_engine(single_processor, max_workers=2) as engine:
            for query in queries:
                engine.register(query, algorithm="mttd", epsilon=0.1)
            engine.serve_stream(tiny_dataset.stream)
            single_results = {
                qid: (set(r.result.element_ids), r.result.score)
                for qid, r in engine.results().items()
            }
            assert engine.processor is single_processor
            assert not engine.is_cluster

        coordinator = ClusterCoordinator(
            tiny_dataset.topic_model,
            TINY_CONFIG,
            cluster=ClusterConfig(num_shards=3, backend="serial"),
        )
        with coordinator, build_service_engine(coordinator, max_workers=2) as engine:
            for query in queries:
                engine.register(query, algorithm="mttd", epsilon=0.1)
            engine.serve_stream(tiny_dataset.stream)
            cluster_results = {
                qid: (set(r.result.element_ids), r.result.score)
                for qid, r in engine.results().items()
            }
            assert engine.is_cluster
            assert engine.processor is None
            assert engine.snapshot_cache is None
            report = engine.report()
            assert "3-shard cluster" in report

        assert set(single_results) == set(cluster_results)
        for qid, (ids, score) in single_results.items():
            assert cluster_results[qid][0] == ids
            assert cluster_results[qid][1] == pytest.approx(score, abs=1e-9)
