"""JSON export of the service metrics (`ServiceMetrics.to_dict`).

The serving tier ships these numbers over ``/telemetry`` and
``/metrics``, so the snapshot must be plain-JSON serialisable, complete,
and a value copy detached from the live accumulator.
"""

from __future__ import annotations

import json

from server_harness import element, ingest_payload, make_engine

from repro.core.query import KSIRQuery
from repro.server.json_codec import parse_ingest
from repro.service.metrics import ServiceMetrics, timer_summary
from repro.utils.timing import TimingStats


class TestToDict:
    def test_empty_metrics_round_trip(self) -> None:
        snapshot = ServiceMetrics().to_dict()
        decoded = json.loads(json.dumps(snapshot))
        assert decoded["buckets"] == 0
        assert decoded["opportunities"] == 0
        assert decoded["reeval_ratio"] == 0.0
        assert decoded["eval_latency"]["count"] == 0.0
        assert decoded["maintenance_timer"]["p99_ms"] == 0.0

    def test_snapshot_matches_counters_and_rates(self) -> None:
        metrics = ServiceMetrics(
            buckets=4,
            evaluations=6,
            reused=2,
            full_reevals=1,
            expired_queries=1,
            snapshot_hits=5,
            snapshot_misses=1,
        )
        metrics.eval_latency.add_ms(2.0)
        metrics.eval_latency.add_ms(4.0)
        metrics.maintenance_timer.add(0.5)

        snapshot = metrics.to_dict()
        assert snapshot["buckets"] == 4
        assert snapshot["evaluations"] == 6
        assert snapshot["reused"] == 2
        assert snapshot["opportunities"] == 8
        assert snapshot["reeval_ratio"] == 6 / 8
        assert snapshot["result_cache_hit_rate"] == 2 / 8
        assert snapshot["snapshot_hit_rate"] == 5 / 6
        assert snapshot["maintenance_seconds"] == 0.5
        assert snapshot["queries_per_sec"] == 8 / 0.5
        assert snapshot["evaluations_per_sec"] == 6 / 0.5
        assert snapshot["eval_latency"]["count"] == 2.0
        assert snapshot["eval_latency"]["total_ms"] == 6.0
        assert snapshot["eval_latency"]["p50_ms"] == 2.0
        assert snapshot["eval_latency"]["max_ms"] == 4.0

    def test_snapshot_is_detached_value_copy(self) -> None:
        metrics = ServiceMetrics(buckets=1)
        snapshot = metrics.to_dict()
        snapshot["buckets"] = 99
        snapshot["eval_latency"]["count"] = 99.0
        assert metrics.buckets == 1
        assert metrics.eval_latency.count == 0

    def test_snapshot_is_json_serialisable(self) -> None:
        metrics = ServiceMetrics(buckets=2, evaluations=3)
        metrics.eval_latency.add_ms(1.25)
        text = json.dumps(metrics.to_dict(), sort_keys=True)
        assert json.loads(text)["evaluations"] == 3

    def test_live_engine_snapshot(self) -> None:
        engine = make_engine()
        try:
            service = engine.service_engine
            assert service is not None
            service.register(KSIRQuery(k=2, vector=[1.0, 0.0]), query_id="qa")
            elements, end_time = parse_ingest(ingest_payload(1, element(1, 1, 0)))
            engine.ingest_bucket(elements, end_time)
            snapshot = service.metrics.to_dict()
        finally:
            engine.close()
        assert snapshot["buckets"] == 1
        assert snapshot["opportunities"] >= 1
        json.dumps(snapshot)


class TestTimerSummary:
    def test_empty_stats(self) -> None:
        summary = timer_summary(TimingStats(name="t"))
        assert summary == {
            "count": 0.0,
            "total_ms": 0.0,
            "mean_ms": 0.0,
            "p50_ms": 0.0,
            "p95_ms": 0.0,
            "p99_ms": 0.0,
            "max_ms": 0.0,
        }

    def test_percentiles_from_samples(self) -> None:
        stats = TimingStats(name="t")
        for ms in (1.0, 2.0, 3.0, 4.0, 100.0):
            stats.add_ms(ms)
        summary = timer_summary(stats)
        assert summary["count"] == 5.0
        assert summary["p50_ms"] == 3.0
        assert summary["p99_ms"] == 100.0
        assert summary["max_ms"] == 100.0
