"""``POST /ingest``: raw out-of-order events over HTTP.

Unlike ``/ingest/bucket`` (pre-bucketed, strictly ordered), this endpoint
feeds the engine's event-time ingestor: events may arrive in any order
within the configured lateness horizon, and the response reports the
stream-metrics snapshot alongside what was sealed.  Driven in-process
through the ASGI test client.
"""

from __future__ import annotations

import pytest
from server_harness import element, make_engine

from repro.server.app import KSIRServer, create_app
from repro.server.testing import TestClient
from repro.streams import StreamConfig


@pytest.fixture()
def app() -> KSIRServer:
    application = create_app(
        make_engine(streams=StreamConfig(allowed_lateness=2))
    )
    yield application
    application.close()


@pytest.fixture()
def client(app: KSIRServer) -> TestClient:
    with TestClient(app) as test_client:
        yield test_client


class TestIngestEvents:
    def test_out_of_order_events_with_flush(self, client: TestClient) -> None:
        events = [
            element(3, 5, topic=0),
            element(1, 2, topic=0),  # both behind the high-water mark of 5
            element(2, 4, topic=1),
        ]
        response = client.post("/ingest", {"events": events, "flush": True})
        assert response.status == 200
        body = response.json()
        assert body["accepted"] == 3
        assert body["buckets_sealed"] > 0
        assert body["time"] == 5
        streams = body["streams"]
        assert streams["events_total"] == 3
        assert streams["late_events"] == 2
        assert streams["dropped_late"] == 0
        assert streams["pending_events"] == 0

    def test_without_flush_the_tail_stays_pending(self, client: TestClient) -> None:
        response = client.post(
            "/ingest", {"events": [element(1, 10, topic=0)]}
        )
        assert response.status == 200
        body = response.json()
        assert body["buckets_sealed"] == 0
        assert body["streams"]["pending_events"] == 1
        # A later batch with flush seals everything.
        follow_up = client.post(
            "/ingest", {"events": [element(2, 12, topic=0)], "flush": True}
        )
        assert follow_up.json()["streams"]["pending_events"] == 0

    def test_elements_alias_is_accepted(self, client: TestClient) -> None:
        response = client.post(
            "/ingest", {"elements": [element(1, 3, topic=0)], "flush": True}
        )
        assert response.status == 200
        assert response.json()["accepted"] == 1

    def test_ingested_elements_are_queryable(self, client: TestClient) -> None:
        events = [element(i, i, topic=0) for i in (2, 1, 3)]
        client.post("/ingest", {"events": events, "flush": True})
        answer = client.post(
            "/query", {"k": 2, "vector": [1.0, 0.0], "algorithm": "mttd"}
        )
        assert answer.status == 200
        assert len(answer.json()["result"]["element_ids"]) > 0

    def test_malformed_payloads_are_422(self, client: TestClient) -> None:
        for payload, fragment in [
            ({}, "events"),
            ({"events": "nope"}, "events"),
            ({"events": [42]}, "events[0]"),
            ({"events": [element(1, 1, topic=0)], "flush": "yes"}, "flush"),
            ({"events": [], "extra": 1}, "unknown"),
        ]:
            response = client.post("/ingest", payload)
            assert response.status == 422, payload
            assert fragment in response.json()["error"], payload

    def test_invalid_element_in_batch_is_422(self, client: TestClient) -> None:
        bad = {"timestamp": 1, "tokens": []}  # element_id missing
        response = client.post("/ingest", {"events": [bad]})
        assert response.status == 422
        assert "events[0]" in response.json()["error"]


class TestStreamObservability:
    def test_metrics_exposition_includes_stream_gauges(
        self, client: TestClient
    ) -> None:
        client.post(
            "/ingest",
            {"events": [element(1, 2, topic=0)], "flush": True},
        )
        text = client.get("/metrics").body.decode()
        assert "ksir_streams_events_total 1" in text
        assert "ksir_streams_dropped_late 0" in text
        assert "ksir_streams_watermark_lag_p50" in text

    def test_telemetry_document_has_streams_section(
        self, client: TestClient
    ) -> None:
        client.post(
            "/ingest",
            {"events": [element(1, 2, topic=0)], "flush": True},
        )
        body = client.get("/telemetry").json()
        assert "streams" in body
        assert body["streams"]["events_total"] == 1

    def test_dropped_late_is_reported(self) -> None:
        # allowed_lateness=0: a genuinely late event is dropped + counted.
        with TestClient(
            create_app(make_engine(streams=StreamConfig(allowed_lateness=0)))
        ) as strict:
            strict.post(
                "/ingest",
                {"events": [element(1, 5, topic=0), element(2, 9, topic=0)]},
            )
            response = strict.post(
                "/ingest", {"events": [element(3, 1, topic=0)], "flush": True}
            )
            assert response.json()["streams"]["dropped_late"] == 1
