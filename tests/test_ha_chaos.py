"""Fault injection (repro.ha.chaos) and the recoveries it must trigger.

Each injector is exercised against the failure path it simulates: a hung
worker must trip the heartbeat timeout and be replaced, and a damaged
checkpoint — plain or chain — must surface as a clear CheckpointError
rather than garbage state.
"""

from __future__ import annotations

import time

import pytest

from repro.api import (
    CheckpointError,
    EngineConfig,
    KSIREngine,
    read_checkpoint,
)
from repro.cluster import ClusterConfig
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.ha import CheckpointChain, ClusterSupervisor, HAConfig
from repro.ha.chaos import corrupt_checkpoint, delay_heartbeat, kill_worker

from tests.conftest import build_reference_stream

NUM_BUCKETS = 8
BUCKET_LENGTH = 2

PROCESSOR = ProcessorConfig(
    window_length=NUM_BUCKETS,
    bucket_length=BUCKET_LENGTH,
    scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
)


def build_stream(seed: int):
    return build_reference_stream(seed, NUM_BUCKETS * BUCKET_LENGTH, 4, 18)


def buckets_of(elements):
    return [
        (elements[start : start + BUCKET_LENGTH],
         elements[start + BUCKET_LENGTH - 1].timestamp)
        for start in range(0, len(elements), BUCKET_LENGTH)
    ]


def sharded_engine(model) -> KSIREngine:
    return KSIREngine(
        model,
        EngineConfig(
            backend="sharded",
            processor=PROCESSOR,
            cluster=ClusterConfig(num_shards=2, backend="process"),
        ),
    )


class TestDelayHeartbeat:
    def test_hung_worker_trips_timeout_and_is_replaced(self):
        model, elements = build_stream(seed=29)
        buckets = buckets_of(elements)
        supervisor = ClusterSupervisor(
            sharded_engine(model),
            ha=HAConfig(heartbeat_interval=0.05, heartbeat_timeout=0.25),
        )
        with supervisor:
            for members, end_time in buckets[:4]:
                supervisor.ingest_bucket(members, end_time)
            # Hang shard 1: alive but answering probes slower than the
            # timeout — indistinguishable from a wedged worker.
            delay_heartbeat(supervisor.coordinator, 1, 5.0)
            supervisor.start()
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                status = supervisor.status()
                if status["recoveries"] >= 1 and status["healthy"]:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("hung worker was never declared dead and replaced")
            supervisor.stop()
            # The replacement worker has no chaos knobs set: ingest and
            # query work normally again.
            for members, end_time in buckets[4:]:
                supervisor.ingest_bucket(members, end_time)
            assert supervisor.engine.elements_processed == len(elements)
            assert supervisor.status()["healthy"]

    def test_zero_delay_restores_normal_probes(self):
        model, _ = build_stream(seed=29)
        supervisor = ClusterSupervisor(sharded_engine(model))
        with supervisor:
            fanout = supervisor.coordinator.fanout
            delay_heartbeat(fanout, 0, 5.0)
            delay_heartbeat(fanout, 0, 0.0)
            assert fanout.ping(timeout=1.0) == [True, True]


class TestKillWorker:
    def test_kill_leaves_failure_invisible_until_probed(self):
        model, _ = build_stream(seed=29)
        supervisor = ClusterSupervisor(sharded_engine(model))
        with supervisor:
            fanout = supervisor.coordinator.fanout
            kill_worker(supervisor.coordinator, 1)
            # Like a real crash: nothing is marked dead until a probe or
            # command hits the broken pipe.
            assert fanout.dead_shards == ()
            fanout.ping(timeout=1.0)
            assert fanout.dead_shards == (1,)

    def test_rejects_in_process_fanout(self):
        model, _ = build_stream(seed=29)
        engine = KSIREngine(
            model,
            EngineConfig(
                backend="sharded",
                processor=PROCESSOR,
                cluster=ClusterConfig(num_shards=2, backend="serial"),
            ),
        )
        backend = engine.backend
        with pytest.raises(TypeError, match="process fan-out"):
            kill_worker(backend.coordinator, 0)
        engine.close()


class TestCorruptCheckpoint:
    @staticmethod
    def _checkpoint(tmp_path, seed: int = 5):
        model, elements = build_stream(seed)
        engine = KSIREngine(model, EngineConfig(processor=PROCESSOR))
        for members, end_time in buckets_of(elements)[:4]:
            engine.ingest_bucket(members, end_time)
        path = engine.save(tmp_path / "ckpt")
        engine.close()
        return path

    @pytest.mark.parametrize("mode", ["truncate", "garbage", "remove"])
    def test_damaged_plain_checkpoint_raises_checkpoint_error(
        self, tmp_path, mode
    ):
        path = self._checkpoint(tmp_path)
        victim = corrupt_checkpoint(path, mode=mode)
        assert victim.name == "state_arrays.npz" or not victim.exists()
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_damaged_chain_targets_newest_full_segment(self, tmp_path):
        model, elements = build_stream(seed=5)
        buckets = buckets_of(elements)
        engine = KSIREngine(model, EngineConfig(processor=PROCESSOR))
        chain = CheckpointChain(tmp_path / "chain", full_every=8)
        for index in range(0, 6, 2):
            for members, end_time in buckets[index : index + 2]:
                engine.ingest_bucket(members, end_time)
            chain.save(engine)
        engine.close()
        victim = corrupt_checkpoint(tmp_path / "chain", mode="garbage")
        assert victim.parent.name.endswith("-full")
        with pytest.raises(CheckpointError):
            CheckpointChain(tmp_path / "chain").read_payload()

    def test_unknown_mode_rejected(self, tmp_path):
        path = self._checkpoint(tmp_path)
        with pytest.raises(ValueError, match="unknown corruption mode"):
            corrupt_checkpoint(path, mode="sabotage")

    def test_non_checkpoint_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="not a checkpoint"):
            corrupt_checkpoint(tmp_path)
