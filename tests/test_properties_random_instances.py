"""Property-based cross-checks of the algorithms on random k-SIR instances.

The paper-example tests pin exact values; these tests generate many small
random instances (random topic models, documents, references and query
vectors) and check the relationships that must hold on *every* instance:

* every algorithm's reported value equals the recomputed objective value;
* CELF equals plain greedy;
* MTTS / MTTD / SieveStreaming respect their approximation guarantees
  relative to the greedy solution (greedy ≥ (1 − 1/e)·OPT, so a method with
  guarantee ``c`` must achieve at least ``c`` times ... the brute-force
  optimum on these tiny instances, which we compute exactly);
* ranked-list traversal upper bounds dominate every retrieved element.
"""

from __future__ import annotations

import itertools

import pytest
from typing import Dict, List, Tuple

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.algorithms import CELF, GreedySelection, MTTD, MTTS, SieveStreaming
from repro.core.element import SocialElement
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import KSIRObjective, ProfileBuilder, ScoringConfig, ScoringContext
from repro.topics.model import MatrixTopicModel
from repro.topics.vocabulary import Vocabulary


def build_instance(
    seed: int, num_elements: int, num_topics: int, vocab_size: int
) -> Tuple[ScoringContext, RankedListIndex]:
    """A small random k-SIR instance (context + consistent ranked lists)."""
    rng = np.random.default_rng(seed)
    vocabulary = Vocabulary([f"w{i}" for i in range(vocab_size)])
    topic_word = rng.dirichlet(np.full(vocab_size, 0.3), size=num_topics)
    model = MatrixTopicModel(vocabulary, topic_word, normalize=True)
    config = ScoringConfig(lambda_weight=0.5, eta=2.0)
    builder = ProfileBuilder(model, config)

    elements: List[SocialElement] = []
    for element_id in range(num_elements):
        length = int(rng.integers(2, 6))
        tokens = tuple(f"w{int(i)}" for i in rng.integers(0, vocab_size, size=length))
        distribution = rng.dirichlet(np.full(num_topics, 0.3))
        num_refs = int(rng.integers(0, min(3, element_id + 1))) if element_id else 0
        references = tuple(
            int(r) for r in rng.choice(element_id, size=num_refs, replace=False)
        ) if num_refs else ()
        elements.append(
            SocialElement(
                element_id=element_id,
                timestamp=element_id + 1,
                tokens=tokens,
                references=references,
                topic_distribution=distribution,
            )
        )

    # Everything is active and every element is inside the window.
    followers: Dict[int, List[int]] = {e.element_id: [] for e in elements}
    for element in elements:
        for parent in element.references:
            followers[parent].append(element.element_id)
    profiles = {e.element_id: builder.build(e) for e in elements}
    context = ScoringContext(profiles, followers, config, time=num_elements)

    index = RankedListIndex(num_topics, config)
    for element in elements:
        index.insert(profiles[element.element_id])
        follower_profiles = {fid: profiles[fid] for fid in followers[element.element_id]}
        if follower_profiles:
            index.refresh(profiles[element.element_id], follower_profiles, element.timestamp)
    # Final refresh so every stored score equals the singleton score.
    for element in elements:
        follower_profiles = {fid: profiles[fid] for fid in followers[element.element_id]}
        index.refresh(profiles[element.element_id], follower_profiles, element.timestamp)
    return context, index


def random_query_vector(seed: int, num_topics: int) -> np.ndarray:
    rng = np.random.default_rng(seed + 104729)
    active = rng.integers(1, min(3, num_topics) + 1)
    topics = rng.choice(num_topics, size=active, replace=False)
    vector = np.zeros(num_topics)
    vector[topics] = rng.dirichlet(np.ones(active))
    return vector


def brute_force_optimum(objective: KSIRObjective, k: int) -> float:
    best = 0.0
    ids = objective.context.active_ids
    for size in range(1, min(k, len(ids)) + 1):
        for subset in itertools.combinations(ids, size):
            best = max(best, objective.value(subset))
    return best


instance_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=4, max_value=10),      # elements
    st.integers(min_value=2, max_value=4),       # topics
    st.integers(min_value=5, max_value=12),      # vocabulary
    st.integers(min_value=1, max_value=3),       # k
)


class TestRandomInstances:
    @given(params=instance_params)
    @settings(max_examples=25, deadline=None)
    def test_reported_values_match_recomputation(self, params):
        seed, n, z, v, k = params
        context, index = build_instance(seed, n, z, v)
        vector = random_query_vector(seed, z)
        for algorithm in (GreedySelection(), CELF(), SieveStreaming(0.2), MTTS(0.2), MTTD(0.2)):
            objective = KSIRObjective(context, vector)
            outcome = algorithm.select(
                objective, k, index=index if algorithm.requires_index else None
            )
            recomputed = context.score(outcome.element_ids, vector)
            assert outcome.value == pytest.approx(recomputed, abs=1e-9)
            assert len(outcome.element_ids) <= k

    @given(params=instance_params)
    @settings(max_examples=25, deadline=None)
    def test_celf_matches_greedy(self, params):
        seed, n, z, v, k = params
        context, index = build_instance(seed, n, z, v)
        del index
        vector = random_query_vector(seed, z)
        greedy_value = GreedySelection().select(KSIRObjective(context, vector), k).value
        celf_value = CELF().select(KSIRObjective(context, vector), k).value
        assert celf_value == pytest.approx(greedy_value, abs=1e-9)

    @given(params=instance_params)
    @settings(max_examples=20, deadline=None)
    def test_approximation_guarantees(self, params):
        seed, n, z, v, k = params
        context, index = build_instance(seed, n, z, v)
        vector = random_query_vector(seed, z)
        optimum = brute_force_optimum(KSIRObjective(context, vector), k)
        if optimum <= 1e-12:
            return
        guarantees = {
            GreedySelection(): 1.0 - 1.0 / np.e,
            CELF(): 1.0 - 1.0 / np.e,
            SieveStreaming(0.2): 0.5 - 0.2,
            MTTS(0.2): 0.5 - 0.2,
            MTTD(0.2): 1.0 - 1.0 / np.e - 0.2,
        }
        for algorithm, bound in guarantees.items():
            objective = KSIRObjective(context, vector)
            outcome = algorithm.select(
                objective, k, index=index if algorithm.requires_index else None
            )
            assert outcome.value >= bound * optimum - 1e-9, type(algorithm).__name__

    @given(params=instance_params)
    @settings(max_examples=20, deadline=None)
    def test_traversal_upper_bound_dominates(self, params):
        seed, n, z, v, _k = params
        context, index = build_instance(seed, n, z, v)
        vector = random_query_vector(seed, z)
        traversal = index.traversal(vector)
        while True:
            bound = traversal.upper_bound()
            item = traversal.pop()
            if item is None:
                break
            element_id, stored = item
            assert stored <= bound + 1e-9
            # Stored scores equal the true singleton scores after the refresh.
            assert stored == pytest.approx(context.singleton_score(element_id, vector), abs=1e-9)



