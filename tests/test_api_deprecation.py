"""The completed deprecation cycle: direct construction is now a hard error.

PR 4 deprecated constructing :class:`KSIRProcessor` / :class:`ServiceEngine`
directly in favour of the :class:`repro.api.KSIREngine` facade; this PR
completes the cycle.  Direct construction raises :class:`TypeError` carrying
the migration target, the facade and the library-internal construction path
stay error-free, and internally-built engines remain exactly equivalent to
facade-built ones.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import EngineConfig, KSIREngine, LocalBackend, ServiceConfig
from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.service import ServiceEngine
from repro.utils.deprecation import library_managed_construction
from tests.conftest import build_processor, build_service_engine

#: 20-bucket replay of the tiny profile (bucket = 15 simulated minutes).
CONFIG = ProcessorConfig(
    window_length=2 * 3600,
    bucket_length=900,
    scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
)
NUM_BUCKETS = 20


@pytest.fixture(scope="module")
def dataset():
    return SyntheticStreamGenerator.from_profile("tiny", seed=19).generate()


@pytest.fixture(scope="module")
def twenty_buckets(dataset):
    buckets = list(dataset.stream.buckets(CONFIG.bucket_length))[:NUM_BUCKETS]
    assert len(buckets) == NUM_BUCKETS
    return buckets


class TestHardError:
    def test_direct_processor_construction_raises(self, dataset):
        with pytest.raises(TypeError, match="KSIRProcessor"):
            KSIRProcessor(dataset.topic_model, CONFIG)

    def test_error_message_names_the_facade_replacement(self, dataset):
        with pytest.raises(TypeError, match=r"repro\.api\.KSIREngine"):
            KSIRProcessor(dataset.topic_model, CONFIG)

    def test_direct_service_engine_construction_raises(self, dataset):
        processor = build_processor(dataset.topic_model, CONFIG)
        with pytest.raises(TypeError, match="ServiceEngine"):
            ServiceEngine(processor, max_workers=1)

    def test_facade_construction_does_not_raise_or_warn(self, dataset):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for backend in ("local", "sharded", "service"):
                engine = KSIREngine(
                    dataset.topic_model,
                    EngineConfig(backend=backend, processor=CONFIG),
                )
                engine.close()

    def test_library_managed_construction_disarms_the_guard(self, dataset):
        with library_managed_construction():
            KSIRProcessor(dataset.topic_model, CONFIG)

    def test_guard_rearms_after_the_block(self, dataset):
        with library_managed_construction():
            KSIRProcessor(dataset.topic_model, CONFIG)
        with pytest.raises(TypeError, match="KSIRProcessor"):
            KSIRProcessor(dataset.topic_model, CONFIG)

    def test_guard_is_reentrant(self, dataset):
        with library_managed_construction():
            with library_managed_construction():
                KSIRProcessor(dataset.topic_model, CONFIG)
            # Inner exit must not disarm the outer block.
            KSIRProcessor(dataset.topic_model, CONFIG)


class TestEquivalence:
    """Internally-built engines behave exactly like facade-built engines."""

    def test_internal_processor_equals_facade_on_twenty_buckets(
        self, dataset, twenty_buckets
    ):
        direct = build_processor(dataset.topic_model, CONFIG)
        facade = KSIREngine(dataset.topic_model, EngineConfig(processor=CONFIG))
        for bucket in twenty_buckets:
            direct.process_bucket(bucket.elements, bucket.end_time)
            facade.ingest_bucket(bucket.elements, bucket.end_time)

        assert direct.active_count == facade.active_count
        assert direct.buckets_processed == facade.buckets_processed

        backend = facade.backend
        assert isinstance(backend, LocalBackend)
        index_a, index_b = direct.ranked_lists, backend.processor.ranked_lists
        for topic in range(index_a.num_topics):
            assert dict(index_a.items(topic)) == dict(index_b.items(topic))

        for topic in (0, 1, 2):
            query = dataset.make_query(k=4, topic=topic)
            a = direct.query(query, algorithm="mttd", epsilon=0.1)
            b = facade.query(query, algorithm="mttd", epsilon=0.1)
            assert a.element_ids == b.element_ids
            assert a.score == b.score

    def test_internal_service_engine_equals_facade_on_twenty_buckets(
        self, dataset, twenty_buckets
    ):
        processor = build_processor(dataset.topic_model, CONFIG)
        direct = build_service_engine(processor, max_workers=1)
        facade = KSIREngine(
            dataset.topic_model,
            EngineConfig(
                backend="service",
                processor=CONFIG,
                service=ServiceConfig(max_workers=1),
            ),
        )
        for topic in range(4):
            query = dataset.make_query(k=3, topic=topic)
            direct.register(query, algorithm="mttd", epsilon=0.1)
            facade.register(query, algorithm="mttd", epsilon=0.1)
        for bucket in twenty_buckets:
            direct.ingest_bucket(bucket.elements, bucket.end_time)
            facade.ingest_bucket(bucket.elements, bucket.end_time)

        ours, theirs = facade.results(), direct.results()
        assert ours.keys() == theirs.keys()
        for query_id in theirs:
            assert ours[query_id].result.element_ids == theirs[query_id].result.element_ids
            assert ours[query_id].result.score == theirs[query_id].result.score
            assert ours[query_id].evaluations == theirs[query_id].evaluations
        direct.close()
        facade.close()
