"""Tests for the partitioning strategies and the shard planner."""

from __future__ import annotations

import pytest

from repro.cluster import (
    HashPartitioner,
    LoadBalancedPartitioner,
    RoundRobinPartitioner,
    ShardPlanner,
    make_partitioner,
)
from repro.core.element import SocialElement


def make_element(element_id: int, references=(), tokens=("word",)) -> SocialElement:
    return SocialElement(
        element_id=element_id,
        timestamp=element_id + 1,
        tokens=tokens,
        references=tuple(references),
    )


class TestStrategies:
    def test_hash_is_deterministic_and_in_range(self):
        partitioner = HashPartitioner()
        for element_id in range(200):
            shard = partitioner.assign(make_element(element_id), 4)
            assert 0 <= shard < 4
            assert shard == HashPartitioner.shard_of(element_id, 4)
            assert shard == partitioner.assign(make_element(element_id), 4)

    def test_hash_spreads_elements(self):
        counts = [0] * 4
        for element_id in range(400):
            counts[HashPartitioner.shard_of(element_id, 4)] += 1
        assert min(counts) > 0
        assert max(counts) < 400

    def test_round_robin_cycles(self):
        partitioner = RoundRobinPartitioner()
        shards = [partitioner.assign(make_element(i), 3) for i in range(6)]
        assert shards == [0, 1, 2, 0, 1, 2]

    def test_load_balanced_prefers_least_loaded(self):
        partitioner = LoadBalancedPartitioner()
        heavy = make_element(0, tokens=tuple("abcdefgh"))
        light = make_element(1, tokens=("a",))
        assert partitioner.assign(heavy, 2) == 0
        # Shard 0 now carries 8 tokens of load; the light element goes to 1
        # and the next ones keep evening things out.
        assert partitioner.assign(light, 2) == 1
        assert partitioner.assign(make_element(2, tokens=("a", "b")), 2) == 1
        assert partitioner.loads[0] == pytest.approx(8.0)

    def test_load_balanced_counts_references(self):
        partitioner = LoadBalancedPartitioner()
        partitioner.assign(make_element(0, tokens=("a",), references=(7, 8)), 2)
        assert partitioner.loads[0] == pytest.approx(3.0)

    def test_make_partitioner_known_and_unknown(self):
        assert isinstance(make_partitioner("hash"), HashPartitioner)
        assert isinstance(make_partitioner("Round-Robin"), RoundRobinPartitioner)
        assert isinstance(make_partitioner("load-balanced"), LoadBalancedPartitioner)
        with pytest.raises(ValueError, match="available"):
            make_partitioner("consistent-banana")


class TestShardPlanner:
    def test_assignment_is_memoised(self):
        planner = ShardPlanner(3, strategy="round-robin")
        element = make_element(5)
        first = planner.assign(element)
        assert planner.assign(element) == first
        assert planner.owner(5) == first
        assert planner.owner(99) is None

    def test_route_sends_home_and_parent_shards(self):
        planner = ShardPlanner(2, strategy="round-robin")
        parent = make_element(0)          # home shard 0
        follower = make_element(1, references=(0,))  # home shard 1, parent on 0
        routed = planner.route_bucket([parent, follower], with_owners=True)

        shard0 = routed[0]
        shard1 = routed[1]
        assert [e.element_id for e in shard0.elements] == [0, 1]
        assert shard0.home_count == 1 and shard0.foreign_count == 1
        assert [e.element_id for e in shard1.elements] == [1]
        assert shard1.home_count == 1 and shard1.foreign_count == 0
        # The ownership tables ship everything the shard needs to decide
        # home-ness, including the referenced parents.
        assert shard0.owners == {0: 0, 1: 1}
        assert shard1.owners == {0: 0, 1: 1}

    def test_route_ignores_dangling_references(self):
        planner = ShardPlanner(2, strategy="round-robin")
        follower = make_element(0, references=(12345,))
        routed = planner.route_bucket([follower], with_owners=True)
        assert sum(len(bucket.elements) for bucket in routed) == 1
        assert 12345 not in routed[0].owners

    def test_route_preserves_stream_order(self):
        planner = ShardPlanner(2, strategy="hash")
        elements = [make_element(i) for i in range(20)]
        routed = planner.route_bucket(elements)
        for bucket in routed:
            ids = [e.element_id for e in bucket.elements]
            assert ids == sorted(ids)

    def test_shard_sizes_account_all_assignments(self):
        planner = ShardPlanner(4, strategy="hash")
        for i in range(40):
            planner.assign(make_element(i))
        assert sum(planner.shard_sizes()) == 40
        assert planner.assigned_count == 40

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)

    def test_trim_inactive_bounds_the_ownership_table(self):
        planner = ShardPlanner(2, strategy="hash")
        old = make_element(0)                      # timestamp 1
        recent = make_element(50)                  # timestamp 51
        planner.assign(old)
        planner.assign(recent)
        dropped = planner.trim_inactive(cutoff=10)
        assert dropped == 1
        assert planner.owner(0) is None
        assert planner.owner(50) is not None

    def test_references_keep_parents_alive_through_trim(self):
        planner = ShardPlanner(2, strategy="hash")
        parent = make_element(0)                   # timestamp 1
        planner.assign(parent)
        follower = make_element(40, references=(0,))  # timestamp 41
        planner.route_bucket([follower])
        # The reference bumped the parent's activity to 41, so a cutoff of
        # 10 must not drop it.
        assert planner.trim_inactive(cutoff=10) == 0
        assert planner.owner(0) is not None
        # Once even the reference ages out, the parent goes too.
        assert planner.trim_inactive(cutoff=100) == 2
        assert planner.owner(0) is None and planner.owner(40) is None

    def test_strategy_out_of_range_rejected(self):
        class Broken(HashPartitioner):
            def assign(self, element, num_shards):
                return num_shards  # off by one

        planner = ShardPlanner(2, strategy=Broken())
        with pytest.raises(ValueError, match="outside"):
            planner.assign(make_element(0))
