"""Tests for the topic-model oracle, LDA, BTM and inference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topics.btm import BitermTopicModel, extract_biterms
from repro.topics.inference import TopicInferencer, infer_query_vector
from repro.topics.lda import LatentDirichletAllocation
from repro.topics.model import MatrixTopicModel
from repro.topics.vocabulary import Vocabulary


def make_two_topic_corpus(docs_per_topic: int = 40, words_per_doc: int = 8):
    """A tiny corpus with two clearly separated topics."""
    rng = np.random.default_rng(11)
    sports = ["goal", "match", "league", "striker", "penalty", "coach"]
    tech = ["software", "cloud", "compiler", "kernel", "network", "database"]
    corpus = []
    for _ in range(docs_per_topic):
        corpus.append(list(rng.choice(sports, size=words_per_doc)))
        corpus.append(list(rng.choice(tech, size=words_per_doc)))
    vocabulary = Vocabulary(sports + tech)
    return corpus, vocabulary, sports, tech


class TestMatrixTopicModel:
    def test_rejects_shape_mismatch(self):
        vocabulary = Vocabulary(["a", "b"])
        with pytest.raises(ValueError):
            MatrixTopicModel(vocabulary, np.ones((2, 3)))

    def test_rejects_negative_entries(self):
        vocabulary = Vocabulary(["a", "b"])
        with pytest.raises(ValueError):
            MatrixTopicModel(vocabulary, np.array([[0.5, -0.5]]))

    def test_normalizes_rows(self):
        vocabulary = Vocabulary(["a", "b"])
        model = MatrixTopicModel(vocabulary, np.array([[2.0, 2.0], [1.0, 3.0]]))
        assert model.validate()
        assert model.word_probability(0, "a") == pytest.approx(0.5)
        assert model.word_probability(1, "b") == pytest.approx(0.75)

    def test_zero_row_becomes_uniform(self):
        vocabulary = Vocabulary(["a", "b"])
        model = MatrixTopicModel(vocabulary, np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert model.word_probability(0, "a") == pytest.approx(0.5)

    def test_word_probabilities_for_unknown_word(self):
        vocabulary = Vocabulary(["a"])
        model = MatrixTopicModel(vocabulary, np.array([[1.0]]))
        assert model.word_probability(0, "zzz") == 0.0
        assert np.all(model.word_probabilities("zzz") == 0.0)

    def test_top_words(self):
        vocabulary = Vocabulary(["a", "b", "c"])
        model = MatrixTopicModel(vocabulary, np.array([[0.1, 0.6, 0.3]]))
        assert model.top_words(0, 2) == ["b", "c"]

    def test_from_word_distributions(self, paper_topic_model):
        assert paper_topic_model.num_topics == 2
        assert paper_topic_model.word_probability(0, "lebron") == pytest.approx(0.12)
        assert paper_topic_model.word_probability(1, "pl") == pytest.approx(0.11)
        assert paper_topic_model.validate()

    def test_from_word_distributions_builder(self):
        model = MatrixTopicModel.from_word_distributions(
            [{"a": 0.6, "b": 0.4}, {"b": 1.0}]
        )
        assert model.num_topics == 2
        assert model.word_probability(0, "a") == pytest.approx(0.6)

    def test_num_topics_must_be_positive(self):
        vocabulary = Vocabulary(["a"])
        with pytest.raises(ValueError):
            MatrixTopicModel(vocabulary, np.zeros((0, 1)))


class TestLDA:
    def test_requires_fit_before_use(self):
        vocabulary = Vocabulary(["a"])
        model = LatentDirichletAllocation(vocabulary, num_topics=2, iterations=5, burn_in=1)
        assert not model.is_fitted
        with pytest.raises(RuntimeError):
            _ = model.topic_word_matrix

    def test_invalid_parameters(self):
        vocabulary = Vocabulary(["a"])
        with pytest.raises(ValueError):
            LatentDirichletAllocation(vocabulary, num_topics=2, iterations=0)
        with pytest.raises(ValueError):
            LatentDirichletAllocation(vocabulary, num_topics=2, iterations=5, burn_in=5)
        with pytest.raises(ValueError):
            LatentDirichletAllocation(vocabulary, num_topics=2, alpha=-1.0)

    def test_fit_produces_valid_distributions(self):
        corpus, vocabulary, _, _ = make_two_topic_corpus(docs_per_topic=15)
        model = LatentDirichletAllocation(
            vocabulary, num_topics=2, iterations=30, burn_in=10, seed=5
        )
        report = model.fit(corpus)
        assert model.is_fitted
        assert model.validate()
        doc_topic = model.document_topic_matrix
        assert doc_topic.shape == (len(corpus), 2)
        assert np.allclose(doc_topic.sum(axis=1), 1.0)
        assert len(report.log_likelihood_trace) == 30

    def test_fit_separates_obvious_topics(self):
        corpus, vocabulary, sports, tech = make_two_topic_corpus(docs_per_topic=30)
        model = LatentDirichletAllocation(
            vocabulary, num_topics=2, iterations=50, burn_in=20, seed=3
        )
        model.fit(corpus)
        # One topic should put most of its mass on sports words, the other on
        # tech words (labels can be swapped).
        sports_mass = [
            sum(model.word_probability(topic, word) for word in sports) for topic in (0, 1)
        ]
        tech_mass = [
            sum(model.word_probability(topic, word) for word in tech) for topic in (0, 1)
        ]
        sports_topic = int(np.argmax(sports_mass))
        tech_topic = int(np.argmax(tech_mass))
        assert sports_topic != tech_topic
        assert sports_mass[sports_topic] > 0.8
        assert tech_mass[tech_topic] > 0.8

    def test_log_likelihood_improves(self):
        corpus, vocabulary, _, _ = make_two_topic_corpus(docs_per_topic=20)
        model = LatentDirichletAllocation(
            vocabulary, num_topics=2, iterations=40, burn_in=10, seed=1
        )
        report = model.fit(corpus)
        first = np.mean(report.log_likelihood_trace[:5])
        last = np.mean(report.log_likelihood_trace[-5:])
        assert last > first

    def test_empty_corpus_rejected(self):
        vocabulary = Vocabulary(["a"])
        model = LatentDirichletAllocation(vocabulary, num_topics=2, iterations=5, burn_in=1)
        with pytest.raises(ValueError):
            model.fit([])


class TestBTM:
    def test_extract_biterms(self):
        assert extract_biterms([1, 2, 3]) == [(1, 2), (1, 3), (2, 3)]
        assert extract_biterms([2, 1]) == [(1, 2)]
        assert extract_biterms([1, 1]) == []
        assert extract_biterms([5]) == []
        assert extract_biterms([]) == []

    def test_extract_biterms_window(self):
        biterms = extract_biterms([1, 2, 3, 4], window=1)
        assert biterms == [(1, 2), (2, 3), (3, 4)]

    def test_fit_produces_valid_distributions(self):
        corpus, vocabulary, _, _ = make_two_topic_corpus(docs_per_topic=15, words_per_doc=5)
        model = BitermTopicModel(vocabulary, num_topics=2, iterations=30, burn_in=10, seed=5)
        report = model.fit(corpus)
        assert model.is_fitted
        assert model.validate()
        assert report.num_biterms > 0
        assert model.topic_mixture.shape == (2,)
        assert model.topic_mixture.sum() == pytest.approx(1.0)

    def test_fit_separates_obvious_topics(self):
        corpus, vocabulary, sports, tech = make_two_topic_corpus(docs_per_topic=25, words_per_doc=5)
        model = BitermTopicModel(vocabulary, num_topics=2, iterations=40, burn_in=15, seed=2)
        model.fit(corpus)
        sports_mass = [
            sum(model.word_probability(topic, word) for word in sports) for topic in (0, 1)
        ]
        tech_mass = [
            sum(model.word_probability(topic, word) for word in tech) for topic in (0, 1)
        ]
        assert int(np.argmax(sports_mass)) != int(np.argmax(tech_mass))

    def test_infer_document_concentrates_on_right_topic(self):
        corpus, vocabulary, sports, tech = make_two_topic_corpus(docs_per_topic=25, words_per_doc=5)
        model = BitermTopicModel(vocabulary, num_topics=2, iterations=40, burn_in=15, seed=2)
        model.fit(corpus)
        sports_doc = model.infer_document(["goal", "match", "striker"])
        tech_doc = model.infer_document(["software", "kernel", "database"])
        assert sports_doc.sum() == pytest.approx(1.0)
        assert int(np.argmax(sports_doc)) != int(np.argmax(tech_doc))

    def test_infer_document_empty_returns_uniform(self):
        corpus, vocabulary, _, _ = make_two_topic_corpus(docs_per_topic=10, words_per_doc=5)
        model = BitermTopicModel(vocabulary, num_topics=2, iterations=10, burn_in=2, seed=2)
        model.fit(corpus)
        assert np.allclose(model.infer_document([]), 0.5)

    def test_rejects_corpus_without_biterms(self):
        vocabulary = Vocabulary(["a", "b"])
        model = BitermTopicModel(vocabulary, num_topics=2, iterations=5, burn_in=1)
        with pytest.raises(ValueError):
            model.fit([["a"], ["b"]])


class TestTopicInferencer:
    def test_invalid_configuration(self, paper_topic_model):
        with pytest.raises(ValueError):
            TopicInferencer(paper_topic_model, method="bogus")
        with pytest.raises(ValueError):
            TopicInferencer(paper_topic_model, iterations=0)
        with pytest.raises(ValueError):
            TopicInferencer(paper_topic_model, sparsity_threshold=1.5)

    def test_expectation_inference_concentrates(self, paper_topic_model):
        inferencer = TopicInferencer(paper_topic_model, alpha=0.05)
        basketball = inferencer.infer(["lebron", "nbaplayoffs", "cavs"])
        soccer = inferencer.infer(["lfc", "ucl", "pl"])
        assert basketball.shape == (2,)
        assert basketball.sum() == pytest.approx(1.0)
        assert basketball[0] > 0.8
        assert soccer[1] > 0.8

    def test_gibbs_inference_agrees_with_expectation(self, paper_topic_model):
        expectation = TopicInferencer(paper_topic_model, alpha=0.05)
        gibbs = TopicInferencer(paper_topic_model, alpha=0.05, method="gibbs", seed=3,
                                iterations=80)
        keywords = ["lebron", "nbaplayoffs"]
        assert int(np.argmax(expectation.infer(keywords))) == int(
            np.argmax(gibbs.infer(keywords))
        )

    def test_empty_document_is_uniform(self, paper_topic_model):
        inferencer = TopicInferencer(paper_topic_model)
        assert np.allclose(inferencer.infer([]), 0.5)
        assert np.allclose(inferencer.infer(["unknownword"]), 0.5)

    def test_sparsity_threshold_truncates(self, paper_topic_model):
        inferencer = TopicInferencer(paper_topic_model, alpha=0.05, sparsity_threshold=0.2)
        distribution = inferencer.infer(["lebron", "nbaplayoffs", "cavs"])
        assert distribution[1] == 0.0
        assert distribution.sum() == pytest.approx(1.0)

    def test_infer_many_stacks_rows(self, paper_topic_model):
        inferencer = TopicInferencer(paper_topic_model)
        stacked = inferencer.infer_many([["lebron"], ["pl"]])
        assert stacked.shape == (2, 2)

    def test_infer_query_vector_helper(self, paper_topic_model):
        vector = infer_query_vector(paper_topic_model, ["ucl", "lfc"])
        assert vector.shape == (2,)
        assert vector[1] > vector[0]
