"""Tests for the per-topic ranked lists and their merged traversal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import ProfileBuilder
from tests.conftest import PAPER_SCORING, build_paper_elements, build_paper_topic_model


def build_paper_index(until_time: int = 8) -> RankedListIndex:
    """Build the ranked lists by replaying the paper example up to a time.

    This mirrors Algorithm 1 directly (insert + refresh on reference +
    remove on expiry) without going through the full processor, so the
    index logic is tested in isolation.
    """
    model = build_paper_topic_model()
    builder = ProfileBuilder(model, PAPER_SCORING)
    index = RankedListIndex(model.num_topics, PAPER_SCORING)
    elements = {e.element_id: e for e in build_paper_elements()}
    profiles = {eid: builder.build(element) for eid, element in elements.items()}
    window_length = 4

    for time in range(1, until_time + 1):
        element = elements.get(time)
        if element is not None and element.timestamp <= until_time:
            index.insert(profiles[element.element_id])
            for parent_id in element.references:
                window_start = element.timestamp - window_length + 1
                followers = {
                    eid: profiles[eid]
                    for eid, other in elements.items()
                    if parent_id in other.references
                    and window_start <= other.timestamp <= element.timestamp
                }
                index.refresh(profiles[parent_id], followers, activity_time=element.timestamp)
        # Expire elements never referred to after the window start.
        window_start = time - window_length + 1
        for eid in list(elements):
            if eid in index and index.last_activity(eid) < window_start:
                index.remove(eid)
    return index


class TestRankedListMaintenance:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RankedListIndex(0, PAPER_SCORING)

    def test_insert_uses_semantic_score_only(self, paper_topic_model):
        builder = ProfileBuilder(paper_topic_model, PAPER_SCORING)
        element = build_paper_elements()[2]  # e3
        profile = builder.build(element)
        index = RankedListIndex(2, PAPER_SCORING)
        index.insert(profile)
        # Before any reference arrives δ_1(e3) = λ·R_1(e3) ≈ 0.378.
        assert index.score(0, 3) == pytest.approx(0.378, abs=0.01)
        assert index.last_activity(3) == element.timestamp

    def test_paper_figure5_scores(self):
        """The ranked-list tuples at t = 8 match Figure 5."""
        index = build_paper_index(until_time=8)
        expected_topic1 = {3: 0.65, 6: 0.48, 8: 0.17, 2: 0.10, 7: 0.06, 1: 0.06, 5: 0.05}
        expected_topic2 = {1: 0.56, 2: 0.48, 5: 0.27, 7: 0.18, 8: 0.16, 6: 0.13, 3: 0.03}
        for element_id, expected in expected_topic1.items():
            assert index.score(0, element_id) == pytest.approx(expected, abs=0.011)
        for element_id, expected in expected_topic2.items():
            assert index.score(1, element_id) == pytest.approx(expected, abs=0.011)
        # e4 expired at t = 8 and must not appear on any list.
        assert 4 not in index
        # Descending order of list 1 matches the figure.
        order_topic1 = [eid for eid, _ in index.items(0)]
        assert order_topic1[:2] == [3, 6]

    def test_scores_of_collects_all_topics(self):
        index = build_paper_index(until_time=8)
        scores = index.scores_of(8)
        assert set(scores) == {0, 1}

    def test_remove_clears_every_list(self):
        index = build_paper_index(until_time=8)
        index.remove(8)
        assert 8 not in index
        assert all(8 != eid for eid, _ in index.items(0))
        assert all(8 != eid for eid, _ in index.items(1))

    def test_total_tuples_and_list_size(self):
        index = build_paper_index(until_time=8)
        assert index.total_tuples() == index.list_size(0) + index.list_size(1)
        assert index.list_size(0) == 7

    def test_update_timer_records_samples(self):
        index = build_paper_index(until_time=8)
        assert index.update_timer.count > 0

    def test_clear(self):
        index = build_paper_index(until_time=8)
        index.clear()
        assert index.total_tuples() == 0
        assert 3 not in index

    def test_validate(self):
        assert build_paper_index(until_time=8).validate()


class TestTraversal:
    def test_rejects_wrong_vector_shape(self):
        index = build_paper_index()
        with pytest.raises(ValueError):
            index.traversal(np.array([0.5, 0.3, 0.2]))

    def test_pop_order_follows_weighted_scores(self):
        """With x = (0.5, 0.5) the first pops match the MTTS walkthrough."""
        index = build_paper_index()
        traversal = index.traversal(np.array([0.5, 0.5]))
        first = traversal.pop()
        second = traversal.pop()
        assert first[0] == 3  # x1·δ1(e3) = 0.33 beats x2·δ2(e1) = 0.28
        assert second[0] == 1
        assert traversal.retrieved_count == 2

    def test_stored_score_combines_topics(self):
        index = build_paper_index()
        traversal = index.traversal(np.array([0.5, 0.5]))
        expected = 0.5 * index.score(0, 3) + 0.5 * index.score(1, 3)
        assert traversal.stored_score(3) == pytest.approx(expected)

    def test_upper_bound_decreases_monotonically(self):
        index = build_paper_index()
        traversal = index.traversal(np.array([0.5, 0.5]))
        bounds = [traversal.upper_bound()]
        while True:
            item = traversal.pop()
            if item is None:
                break
            bounds.append(traversal.upper_bound())
        assert all(later <= earlier + 1e-9 for earlier, later in zip(bounds, bounds[1:]))

    def test_upper_bound_dominates_future_scores(self):
        index = build_paper_index()
        traversal = index.traversal(np.array([0.3, 0.7]))
        while True:
            bound = traversal.upper_bound()
            item = traversal.pop()
            if item is None:
                break
            _eid, score = item
            assert score <= bound + 1e-9

    def test_each_element_retrieved_once(self):
        index = build_paper_index()
        traversal = index.traversal(np.array([0.5, 0.5]))
        popped = [eid for eid, _ in traversal]
        assert len(popped) == len(set(popped))
        assert set(popped) == {1, 2, 3, 5, 6, 7, 8}

    def test_single_topic_query_only_touches_that_list(self):
        index = build_paper_index()
        traversal = index.traversal(np.array([1.0, 0.0]))
        popped = [eid for eid, _ in traversal]
        # Only elements present on topic 1's list are retrieved, best first.
        assert popped[0] == 3
        assert set(popped) == {eid for eid, _ in index.items(0)}

    def test_exhausted(self):
        index = build_paper_index()
        traversal = index.traversal(np.array([0.5, 0.5]))
        assert not traversal.exhausted()
        for _ in traversal:
            pass
        assert traversal.exhausted()
        assert traversal.pop() is None
        assert traversal.upper_bound() == 0.0


class TestDirtyTopicTracking:
    def _profiles(self):
        model = build_paper_topic_model()
        builder = ProfileBuilder(model, PAPER_SCORING)
        return model, {e.element_id: builder.build(e) for e in build_paper_elements()}

    def test_insert_marks_element_topics_dirty(self):
        model, profiles = self._profiles()
        index = RankedListIndex(model.num_topics, PAPER_SCORING)
        index.insert(profiles[4])  # e4 is pure topic 1 (p_2 = 0)
        assert index.peek_dirty_topics() == (0,)
        assert index.take_dirty_topics() == (0,)
        assert index.dirty_topic_count == 0

    def test_take_drains_the_set(self):
        model, profiles = self._profiles()
        index = RankedListIndex(model.num_topics, PAPER_SCORING)
        index.insert(profiles[1])
        index.take_dirty_topics()
        assert index.take_dirty_topics() == ()

    def test_refresh_marks_rescored_topics(self):
        model, profiles = self._profiles()
        index = RankedListIndex(model.num_topics, PAPER_SCORING)
        index.insert(profiles[3])
        index.take_dirty_topics()
        index.refresh(profiles[3], {4: profiles[4]}, activity_time=4)
        assert index.take_dirty_topics() == tuple(sorted(profiles[3].topics))

    def test_remove_marks_only_lists_holding_the_element(self):
        model, profiles = self._profiles()
        index = RankedListIndex(model.num_topics, PAPER_SCORING)
        index.insert(profiles[4])  # only on topic 0's list
        index.take_dirty_topics()
        index.remove(4)
        assert index.take_dirty_topics() == (0,)

    def test_remove_of_absent_element_marks_nothing(self):
        model, _profiles = self._profiles()
        index = RankedListIndex(model.num_topics, PAPER_SCORING)
        index.remove(99)
        assert index.take_dirty_topics() == ()

    def test_clear_marks_every_held_topic(self):
        model, profiles = self._profiles()
        index = RankedListIndex(model.num_topics, PAPER_SCORING)
        index.insert(profiles[1])
        index.take_dirty_topics()
        index.clear()
        assert index.take_dirty_topics() == tuple(sorted(profiles[1].topics))
