"""Tests for the sliding window / active set maintenance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.element import SocialElement
from repro.core.window import ActiveWindow


def make_element(element_id, timestamp, references=()):
    return SocialElement(
        element_id=element_id,
        timestamp=timestamp,
        tokens=("word",),
        references=tuple(references),
        topic_distribution=np.array([1.0]),
    )


class TestActiveWindowBasics:
    def test_invalid_window_length(self):
        with pytest.raises(ValueError):
            ActiveWindow(0)

    def test_insert_and_advance(self):
        window = ActiveWindow(window_length=5)
        window.insert(make_element(1, 10))
        removed = window.advance_to(10)
        assert removed == ()
        assert window.active_count == 1
        assert window.window_count == 1
        assert window.current_time == 10
        assert window.window_start == 6

    def test_expiry_of_old_elements(self):
        window = ActiveWindow(window_length=3)
        window.insert(make_element(1, 1))
        window.advance_to(1)
        window.insert(make_element(2, 5))
        removed = window.advance_to(5)
        assert 1 in removed
        assert 1 not in window
        assert 2 in window

    def test_referenced_elements_stay_active(self):
        window = ActiveWindow(window_length=3)
        window.insert(make_element(1, 1))
        window.advance_to(1)
        window.insert(make_element(2, 4, references=(1,)))
        removed = window.advance_to(4)
        # e1 left the window (ts=1 < 2) but is still referenced by e2 (ts=4).
        assert removed == ()
        assert 1 in window
        assert not window.in_window(1)
        assert window.in_window(2)
        assert window.followers_of(1) == (2,)

    def test_reference_expires_with_referencing_element(self):
        window = ActiveWindow(window_length=3)
        window.insert(make_element(1, 1))
        window.advance_to(1)
        window.insert(make_element(2, 3, references=(1,)))
        window.advance_to(3)
        # When e2 expires at time 6, e1 loses its last supporter and expires too.
        removed = window.advance_to(6)
        assert set(removed) == {1, 2}
        assert window.active_count == 0

    def test_insert_returns_touched_parents(self):
        window = ActiveWindow(window_length=10)
        window.insert(make_element(1, 1))
        touched = window.insert(make_element(2, 2, references=(1, 99)))
        assert touched == (1,)

    def test_unknown_references_ignored(self):
        window = ActiveWindow(window_length=10)
        touched = window.insert(make_element(5, 3, references=(404,)))
        assert touched == ()
        window.advance_to(3)
        assert 404 not in window

    def test_follower_bookkeeping(self):
        window = ActiveWindow(window_length=10)
        window.insert(make_element(1, 1))
        window.insert(make_element(2, 2, references=(1,)))
        window.insert(make_element(3, 3, references=(1,)))
        window.advance_to(3)
        assert set(window.followers_of(1)) == {2, 3}
        assert window.follower_count(1) == 2
        assert window.followers_of(2) == ()

    def test_followers_drop_when_follower_leaves_window(self):
        window = ActiveWindow(window_length=3)
        window.insert(make_element(1, 1))
        window.insert(make_element(2, 2, references=(1,)))
        window.advance_to(2)
        assert window.followers_of(1) == (2,)
        window.insert(make_element(3, 5, references=(1,)))
        window.advance_to(5)
        # e2 (ts=2) left W_t=[3,5]; only e3 still counts as a follower.
        assert window.followers_of(1) == (3,)

    def test_cannot_move_backwards(self):
        window = ActiveWindow(window_length=5)
        window.advance_to(10)
        with pytest.raises(ValueError):
            window.advance_to(9)

    def test_insert_bucket(self):
        window = ActiveWindow(window_length=10)
        touched = window.insert_bucket(
            [make_element(1, 1), make_element(2, 2, references=(1,))]
        )
        assert touched == {1: (), 2: (1,)}

    def test_last_activity_tracks_references(self):
        window = ActiveWindow(window_length=10)
        window.insert(make_element(1, 1))
        window.insert(make_element(2, 7, references=(1,)))
        window.advance_to(7)
        assert window.last_activity(1) == 7
        assert window.last_activity(2) == 7

    def test_accessors(self):
        window = ActiveWindow(window_length=5)
        window.insert(make_element(1, 1))
        window.advance_to(1)
        assert window.active_ids() == (1,)
        assert [e.element_id for e in window.active_elements()] == [1]
        assert window.window_ids() == (1,)
        assert window.get(1).element_id == 1
        assert list(iter(window))[0].element_id == 1
        with pytest.raises(KeyError):
            window.get(42)


class TestPaperExampleWindow:
    def test_active_set_at_time_8(self, paper_elements):
        """At t=8 with T=4 the paper's active set is everything except e4."""
        window = ActiveWindow(window_length=4)
        for element in paper_elements:
            window.insert(element)
            window.advance_to(element.timestamp)
        assert set(window.active_ids()) == {1, 2, 3, 5, 6, 7, 8}
        assert set(window.window_ids()) == {5, 6, 7, 8}
        # Follower sets used in Example 3.2.
        assert set(window.followers_of(3)) == {6, 8}
        assert set(window.followers_of(2)) == {7, 8}
        assert window.followers_of(1) == (5,)
        assert window.validate()


class TestWindowProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),  # timestamp offsets
                st.lists(st.integers(min_value=0, max_value=20), max_size=3),
            ),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_invariants_hold_under_any_arrival_pattern(self, arrivals, window_length):
        """The window invariants hold for arbitrary streams and window lengths."""
        window = ActiveWindow(window_length=window_length)
        elements = []
        for index, (offset, references) in enumerate(
            sorted(arrivals, key=lambda item: item[0])
        ):
            valid_references = [ref for ref in references if ref < index]
            elements.append(make_element(index, offset, references=valid_references))
        current = None
        for element in elements:
            window.insert(element)
            current = element.timestamp if current is None else max(current, element.timestamp)
            window.advance_to(current)
            assert window.validate()
            start = window.window_start
            # Every window member is within [start, current].
            for eid in window.window_ids():
                assert start <= window.get(eid).timestamp <= current
            # Every active element was posted or referenced within the window.
            for eid in window.active_ids():
                assert window.last_activity(eid) >= start
