"""Property test: sharded query answers equal single-node answers.

Random streamed instances (random topic models, documents, backward
references and query vectors) are replayed through a single
``KSIRProcessor`` and a ``ClusterCoordinator`` with a random shard count and
partitioning strategy; window lengths are chosen so expiry, follower loss
and parent re-activation all trigger.  ``verify_equivalence`` must report
identical element ids and scores (within 1e-9) for every deterministic
algorithm.

SieveStreaming is excluded by design: it is a single-pass streaming
algorithm whose output depends on element iteration order, which sharding
inherently changes (see ``repro.cluster.verify``).
"""

from __future__ import annotations

from typing import List

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, verify_equivalence
from repro.core.element import SocialElement
from repro.core.processor import ProcessorConfig
from repro.core.query import KSIRQuery
from repro.core.scoring import ScoringConfig
from repro.topics.model import MatrixTopicModel
from repro.topics.vocabulary import Vocabulary

#: Deterministic algorithms covered by the transparency contract.
ALGORITHMS = ("mttd", "mtts", "greedy", "celf")


def build_stream(
    seed: int, num_elements: int, num_topics: int, vocab_size: int
) -> tuple:
    """A random topic model plus a stream with backward references."""
    rng = np.random.default_rng(seed)
    vocabulary = Vocabulary([f"w{i}" for i in range(vocab_size)])
    topic_word = rng.dirichlet(np.full(vocab_size, 0.3), size=num_topics)
    model = MatrixTopicModel(vocabulary, topic_word, normalize=True)

    elements: List[SocialElement] = []
    for element_id in range(num_elements):
        length = int(rng.integers(2, 6))
        tokens = tuple(f"w{int(i)}" for i in rng.integers(0, vocab_size, size=length))
        distribution = rng.dirichlet(np.full(num_topics, 0.3))
        num_refs = int(rng.integers(0, min(3, element_id + 1))) if element_id else 0
        references = (
            tuple(int(r) for r in rng.choice(element_id, size=num_refs, replace=False))
            if num_refs
            else ()
        )
        elements.append(
            SocialElement(
                element_id=element_id,
                timestamp=element_id + 1,
                tokens=tokens,
                references=references,
                topic_distribution=distribution,
            )
        )
    return model, elements


def random_query(seed: int, num_topics: int, k: int) -> KSIRQuery:
    rng = np.random.default_rng(seed + 104729)
    active = int(rng.integers(1, min(3, num_topics) + 1))
    topics = rng.choice(num_topics, size=active, replace=False)
    vector = np.zeros(num_topics)
    vector[topics] = rng.dirichlet(np.ones(active))
    return KSIRQuery(k=k, vector=vector)


instance_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=6, max_value=12),      # elements
    st.integers(min_value=2, max_value=5),       # topics
    st.integers(min_value=6, max_value=14),      # vocabulary
    st.integers(min_value=2, max_value=4),       # k
    st.integers(min_value=2, max_value=4),       # shards
    st.sampled_from(["hash", "round-robin", "load-balanced"]),
)


class TestShardedEquivalence:
    @given(params=instance_params)
    @settings(max_examples=30, deadline=None)
    def test_sharded_answers_match_single_node(self, params):
        seed, n, z, v, k, shards, partitioner = params
        model, elements = build_stream(seed, n, z, v)
        # A window shorter than the stream forces expiry/re-activation on
        # both sides; small buckets force several advances.
        config = ProcessorConfig(
            window_length=max(3, n // 2),
            bucket_length=2,
            scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
        )
        report = verify_equivalence(
            elements,
            model,
            queries=[random_query(seed, z, k)],
            config=config,
            cluster=ClusterConfig(
                num_shards=shards, partitioner=partitioner, backend="serial"
            ),
            algorithms=ALGORITHMS,
            epsilon=0.1,
        )
        assert report.active_single == report.active_cluster
        assert report.matched, "; ".join(
            f"[{c.algorithm}] {c.detail}" for c in report.mismatches
        )

    @given(params=instance_params)
    @settings(max_examples=10, deadline=None)
    def test_full_window_instances_match(self, params):
        """No-expiry regime: the whole stream stays active."""
        seed, n, z, v, k, shards, partitioner = params
        model, elements = build_stream(seed, n, z, v)
        config = ProcessorConfig(
            window_length=10 * n,
            bucket_length=3,
            scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
        )
        report = verify_equivalence(
            elements,
            model,
            queries=[random_query(seed, z, k), random_query(seed + 1, z, k)],
            config=config,
            cluster=ClusterConfig(
                num_shards=shards, partitioner=partitioner, backend="serial"
            ),
            algorithms=("mttd", "greedy"),
            epsilon=0.1,
        )
        assert report.matched, "; ".join(c.detail for c in report.mismatches)
