"""Stream sources: the registry, disorder injection and the adapters."""

from __future__ import annotations

import json

import pytest

from repro.core.element import SocialElement
from repro.datasets.loaders import save_stream_jsonl
from repro.streams import create_source, inject_disorder, register_source, source_names
from repro.streams.source import (
    CitationFeedSource,
    EntityDumpSource,
    JsonlReplaySource,
    MemorySource,
)


def make_element(element_id: int, timestamp: int) -> SocialElement:
    return SocialElement(
        element_id=element_id,
        timestamp=timestamp,
        tokens=("w",),
        references=(),
    )


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"memory", "jsonl", "citations", "entities"} <= set(source_names())

    def test_create_source_resolves_case_insensitively(self):
        source = create_source("  MEMORY ", elements=[make_element(1, 5)])
        assert isinstance(source, MemorySource)
        assert [element.element_id for element in source] == [1]

    def test_unknown_source_lists_available_names(self):
        with pytest.raises(ValueError, match="unknown stream source 'nope'"):
            create_source("nope")

    def test_register_source_replaces_and_extends(self):
        try:
            register_source("custom-feed", lambda **kw: MemorySource(**kw))
            assert "custom-feed" in source_names()
            source = create_source("custom-feed", elements=[make_element(2, 7)])
            assert [element.element_id for element in source] == [2]
        finally:
            from repro.streams import source as source_module

            source_module._REGISTRY.pop("custom-feed", None)


class TestInjectDisorder:
    ELEMENTS = [make_element(i, 1 + 2 * i) for i in range(50)]

    def test_zero_delay_is_event_time_order(self):
        arrivals = inject_disorder(
            self.ELEMENTS, bucket_length=5, max_delay_buckets=0
        )
        assert arrivals == sorted(
            self.ELEMENTS, key=lambda e: (e.timestamp, e.element_id)
        )

    def test_same_seed_is_deterministic(self):
        first = inject_disorder(
            self.ELEMENTS, bucket_length=5, max_delay_buckets=2, seed=11
        )
        second = inject_disorder(
            self.ELEMENTS, bucket_length=5, max_delay_buckets=2, seed=11
        )
        assert first == second

    def test_different_seeds_differ(self):
        first = inject_disorder(
            self.ELEMENTS, bucket_length=5, max_delay_buckets=2, seed=1
        )
        second = inject_disorder(
            self.ELEMENTS, bucket_length=5, max_delay_buckets=2, seed=2
        )
        assert first != second

    def test_displacement_is_bounded_by_horizon(self):
        horizon = 2 * 5
        arrivals = inject_disorder(
            self.ELEMENTS, bucket_length=5, max_delay_buckets=2, seed=3
        )
        # No element arrives after one stamped more than the horizon later.
        high_water = arrivals[0].timestamp
        for element in arrivals:
            assert element.timestamp > high_water - horizon - 1
            high_water = max(high_water, element.timestamp)
        assert sorted(e.element_id for e in arrivals) == sorted(
            e.element_id for e in self.ELEMENTS
        )

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="bucket_length"):
            inject_disorder(self.ELEMENTS, bucket_length=0, max_delay_buckets=1)
        with pytest.raises(ValueError, match="max_delay_buckets"):
            inject_disorder(self.ELEMENTS, bucket_length=5, max_delay_buckets=-1)
        with pytest.raises(ValueError, match="fraction"):
            inject_disorder(
                self.ELEMENTS, bucket_length=5, max_delay_buckets=1, fraction=1.5
            )


class TestMemorySource:
    def test_default_replay_is_event_time_order(self):
        elements = [make_element(2, 9), make_element(1, 3), make_element(3, 9)]
        source = MemorySource(elements)
        assert [e.element_id for e in source] == [1, 2, 3]

    def test_disorder_injection_is_seeded(self):
        elements = [make_element(i, 1 + i) for i in range(30)]
        source = MemorySource(
            elements, bucket_length=5, disorder=1.0, max_delay_buckets=2, seed=4
        )
        first = [e.element_id for e in source]
        second = [e.element_id for e in source]
        assert first == second
        assert first != [e.element_id for e in elements]


class TestJsonlReplaySource:
    def test_replays_file_in_file_order(self, tmp_path):
        # File order is arrival order — deliberately not sorted.
        path = tmp_path / "feed.jsonl"
        save_stream_jsonl(
            [make_element(1, 9), make_element(2, 3)], path
        )  # save sorts nothing: iterable order is written
        source = JsonlReplaySource(path)
        assert [e.element_id for e in source] == [1, 2]

    def test_invalid_json_names_file_and_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"element_id": 1, "timestamp": 2, "tokens": []}\n{oops\n')
        with pytest.raises(ValueError, match=r"broken\.jsonl:2: invalid JSON"):
            list(JsonlReplaySource(path))

    def test_invalid_element_names_file_and_line(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"timestamp": 2, "tokens": []}\n')
        with pytest.raises(ValueError, match=r"broken\.jsonl:1: invalid element"):
            list(JsonlReplaySource(path))


class TestCitationFeedSource:
    RECORDS = [
        {"id": 3, "year": 2001, "title": "Streaming Queries", "references": [1]},
        {"id": 1, "year": 2000, "title": "Social Influence", "venue": "EDBT"},
        {"id": 2, "year": 2001, "title": "Sliding Windows", "references": [1]},
    ]

    def test_feed_arrives_in_id_order_not_event_time(self):
        source = CitationFeedSource(self.RECORDS, seconds_per_year=100)
        arrivals = list(source)
        assert [e.element_id for e in arrivals] == [1, 2, 3]
        # Year 2000 anchors time 0; 2001 papers land in the next year span.
        by_id = {e.element_id: e for e in arrivals}
        assert by_id[1].timestamp == 1
        assert by_id[2].timestamp == 102
        assert by_id[3].timestamp == 103
        assert by_id[3].references == (1,)
        assert "streaming" in by_id[3].tokens
        assert "edbt" in by_id[1].tokens

    def test_reads_records_from_jsonl_path(self, tmp_path):
        path = tmp_path / "citations.jsonl"
        path.write_text(
            "\n".join(json.dumps(record) for record in self.RECORDS) + "\n"
        )
        source = CitationFeedSource(path, seconds_per_year=100)
        assert [e.element_id for e in source] == [1, 2, 3]

    def test_invalid_record_is_an_error(self):
        with pytest.raises(ValueError, match="invalid citation record"):
            list(CitationFeedSource([{"id": 1, "title": "no year"}]))

    def test_seconds_per_year_validation(self):
        with pytest.raises(ValueError, match="seconds_per_year"):
            CitationFeedSource([], seconds_per_year=0)


class TestEntityDumpSource:
    RECORDS = [
        {
            "id": 2,
            "modified": 50,
            "labels": ["Ada Lovelace"],
            "claims": {"occupation": ["mathematician"]},
            "links": [1],
        },
        {"id": 1, "modified": 80, "labels": ["Charles Babbage"]},
    ]

    def test_dump_order_with_claim_tags_and_links(self):
        arrivals = list(EntityDumpSource(self.RECORDS))
        assert [e.element_id for e in arrivals] == [1, 2]
        by_id = {e.element_id: e for e in arrivals}
        assert by_id[2].timestamp == 50
        assert by_id[2].references == (1,)
        assert "ada" in by_id[2].tokens
        assert "occupation:mathematician" in by_id[2].tokens
        assert by_id[2].text == "Ada Lovelace"

    def test_invalid_record_is_an_error(self):
        with pytest.raises(ValueError, match="invalid entity record"):
            list(EntityDumpSource([{"labels": ["no id"]}]))

    def test_non_mapping_record_is_an_error(self):
        with pytest.raises(ValueError, match="entity record 1 is not a mapping"):
            list(EntityDumpSource([{"id": 1, "modified": 2}, "oops"]))
