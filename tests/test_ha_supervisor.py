"""The cluster supervisor (repro.ha.supervisor): detect, restore, replay.

The acceptance property of the HA subsystem, hypothesis-backed like the
cluster equivalence suite: SIGKILL a process shard worker mid-stream at a
random bucket, let the supervisor heal it (restart + checkpoint restore +
WAL replay), and the recovered cluster must answer queries *identically*
(within 1e-9) to an uninterrupted single-node run over the same stream —
with identical counters, so nothing was lost or double-applied.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, KSIREngine
from repro.cluster import ClusterConfig
from repro.core.processor import ProcessorConfig
from repro.core.query import KSIRQuery
from repro.core.scoring import ScoringConfig
from repro.ha import ClusterSupervisor, HAConfig
from repro.ha.chaos import kill_worker

from tests.conftest import build_reference_stream

NUM_BUCKETS = 16
BUCKET_LENGTH = 2
NUM_TOPICS = 4

PROCESSOR = ProcessorConfig(
    window_length=NUM_BUCKETS,  # half the stream span: expiry triggers
    bucket_length=BUCKET_LENGTH,
    scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
)


def build_stream(seed: int):
    return build_reference_stream(seed, NUM_BUCKETS * BUCKET_LENGTH, NUM_TOPICS, 18)


def buckets_of(elements):
    return [
        (elements[start : start + BUCKET_LENGTH],
         elements[start + BUCKET_LENGTH - 1].timestamp)
        for start in range(0, len(elements), BUCKET_LENGTH)
    ]


def random_query(seed: int, k: int = 4) -> KSIRQuery:
    rng = np.random.default_rng(seed + 104729)
    vector = rng.dirichlet(np.ones(NUM_TOPICS))
    return KSIRQuery(k=k, vector=vector)


def sharded_config(shards: int = 2) -> EngineConfig:
    return EngineConfig(
        backend="sharded",
        processor=PROCESSOR,
        cluster=ClusterConfig(num_shards=shards, backend="process"),
    )


def reference_run(model, buckets) -> KSIREngine:
    engine = KSIREngine(model, EngineConfig(processor=PROCESSOR))
    for members, end_time in buckets:
        engine.ingest_bucket(members, end_time)
    return engine


def assert_matches_reference(supervisor, reference, query) -> None:
    assert supervisor.engine.elements_processed == reference.elements_processed
    assert supervisor.engine.buckets_processed == reference.buckets_processed
    assert supervisor.engine.active_count == reference.active_count
    assert supervisor.engine.current_time == reference.current_time
    for algorithm in ("mttd", "greedy"):
        a = reference.query(query, algorithm=algorithm, epsilon=0.2)
        b = supervisor.query(query, algorithm=algorithm, epsilon=0.2)
        assert a.element_ids == b.element_ids, algorithm
        assert abs(a.score - b.score) <= 1e-9, algorithm


class TestKillAndRecover:
    @given(
        params=st.tuples(
            st.integers(min_value=0, max_value=10_000),  # stream seed
            st.integers(min_value=2, max_value=12),      # kill before bucket
            st.sampled_from([0, 3]),                     # checkpoint cadence
        )
    )
    @settings(max_examples=5, deadline=None)
    def test_recovered_cluster_matches_uninterrupted_run(self, params):
        seed, kill_bucket, checkpoint_every = params
        model, elements = build_stream(seed)
        buckets = buckets_of(elements)
        query = random_query(seed)
        reference = reference_run(model, buckets)
        try:
            with tempfile.TemporaryDirectory() as tmp:
                supervisor = ClusterSupervisor(
                    KSIREngine(model, sharded_config()),
                    ha=HAConfig(checkpoint_every=checkpoint_every),
                    checkpoint_dir=(
                        Path(tmp) / "chain" if checkpoint_every else None
                    ),
                )
                with supervisor:
                    for index, (members, end_time) in enumerate(buckets):
                        if index == kill_bucket:
                            kill_worker(supervisor.coordinator, 1)
                        supervisor.ingest_bucket(members, end_time)
                    assert_matches_reference(supervisor, reference, query)
                    # The kill was detected in-band and healed exactly once.
                    status = supervisor.status()
                    assert status["recoveries"] >= 1
                    assert status["healthy"]
        finally:
            reference.close()

    def test_query_path_heals_dead_shard(self):
        model, elements = build_stream(seed=41)
        buckets = buckets_of(elements)
        query = random_query(41)
        reference = reference_run(model, buckets)
        try:
            supervisor = ClusterSupervisor(KSIREngine(model, sharded_config()))
            with supervisor:
                for members, end_time in buckets:
                    supervisor.ingest_bucket(members, end_time)
                kill_worker(supervisor.coordinator, 0)
                # No ingest follows the kill: the query itself must detect
                # the broken shard, heal it and answer correctly.
                a = reference.query(query, algorithm="mttd", epsilon=0.2)
                b = supervisor.query(query, algorithm="mttd", epsilon=0.2)
                assert a.element_ids == b.element_ids
                assert abs(a.score - b.score) <= 1e-9
                assert supervisor.status()["recoveries"] == 1
        finally:
            reference.close()

    def test_heartbeat_detects_and_restarts_dead_worker(self):
        model, elements = build_stream(seed=13)
        buckets = buckets_of(elements)
        query = random_query(13)
        reference = reference_run(model, buckets)
        try:
            supervisor = ClusterSupervisor(
                KSIREngine(model, sharded_config()),
                ha=HAConfig(heartbeat_interval=0.05, heartbeat_timeout=1.0),
            )
            with supervisor:
                supervisor.start()
                for members, end_time in buckets[:6]:
                    supervisor.ingest_bucket(members, end_time)
                kill_worker(supervisor.coordinator, 1)
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    status = supervisor.status()
                    if status["recoveries"] >= 1 and status["healthy"]:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("heartbeat never recovered the killed shard")
                for members, end_time in buckets[6:]:
                    supervisor.ingest_bucket(members, end_time)
                assert_matches_reference(supervisor, reference, query)
        finally:
            reference.close()


class TestCheckpointCadence:
    def test_cadence_takes_checkpoints_and_truncates_wal(self, tmp_path):
        model, elements = build_stream(seed=3)
        buckets = buckets_of(elements)
        supervisor = ClusterSupervisor(
            KSIREngine(model, sharded_config()),
            ha=HAConfig(checkpoint_every=3),
            checkpoint_dir=tmp_path / "chain",
        )
        with supervisor:
            for members, end_time in buckets[:7]:
                supervisor.ingest_bucket(members, end_time)
            assert supervisor.chain is not None
            assert len(supervisor.chain.segments) == 2
            # Checkpointed buckets leave the WAL; only the gap is retained.
            assert len(supervisor.wal) == 1

    def test_wal_capacity_forces_checkpoint(self, tmp_path):
        model, elements = build_stream(seed=3)
        buckets = buckets_of(elements)
        supervisor = ClusterSupervisor(
            KSIREngine(model, sharded_config()),
            ha=HAConfig(checkpoint_every=0, wal_capacity=4),
            checkpoint_dir=tmp_path / "chain",
        )
        with supervisor:
            for members, end_time in buckets[:6]:
                supervisor.ingest_bucket(members, end_time)
            assert supervisor.chain is not None
            assert len(supervisor.chain.segments) >= 1
            assert len(supervisor.wal) < 4

    def test_manual_checkpoint_returns_segment_name(self, tmp_path):
        model, elements = build_stream(seed=3)
        buckets = buckets_of(elements)
        supervisor = ClusterSupervisor(
            KSIREngine(model, sharded_config()),
            checkpoint_dir=tmp_path / "chain",
        )
        with supervisor:
            supervisor.ingest_bucket(*buckets[0])
            name = supervisor.checkpoint()
            assert name is not None and name.endswith("-full")
            assert len(supervisor.wal) == 0

    def test_checkpoint_without_chain_is_none(self):
        model, elements = build_stream(seed=3)
        supervisor = ClusterSupervisor(KSIREngine(model, sharded_config()))
        with supervisor:
            assert supervisor.checkpoint() is None


class TestRebalance:
    def test_rebalance_preserves_answers_without_stopping_ingest(self):
        model, elements = build_stream(seed=17)
        buckets = buckets_of(elements)
        query = random_query(17)
        reference = reference_run(model, buckets)
        try:
            supervisor = ClusterSupervisor(KSIREngine(model, sharded_config(2)))
            with supervisor:
                for members, end_time in buckets[:6]:
                    supervisor.ingest_bucket(members, end_time)
                supervisor.rebalance(3)  # scale out mid-stream
                assert supervisor.coordinator.num_shards == 3
                for members, end_time in buckets[6:11]:
                    supervisor.ingest_bucket(members, end_time)
                supervisor.rebalance(2)  # and back in
                assert supervisor.coordinator.num_shards == 2
                for members, end_time in buckets[11:]:
                    supervisor.ingest_bucket(members, end_time)
                assert_matches_reference(supervisor, reference, query)
                assert supervisor.status()["rebalances"] == 2
        finally:
            reference.close()

    def test_rebalance_rejects_bad_shard_count(self):
        model, elements = build_stream(seed=3)
        supervisor = ClusterSupervisor(KSIREngine(model, sharded_config()))
        with supervisor:
            with pytest.raises(ValueError, match="num_shards"):
                supervisor.rebalance(0)


class TestSupervisorSurface:
    def test_requires_sharded_backend(self):
        model, _ = build_stream(seed=3)
        engine = KSIREngine(model, EngineConfig(processor=PROCESSOR))
        with pytest.raises(TypeError, match="sharded"):
            ClusterSupervisor(engine)
        engine.close()

    def test_status_shape(self, tmp_path):
        model, elements = build_stream(seed=3)
        supervisor = ClusterSupervisor(
            KSIREngine(model, sharded_config()),
            checkpoint_dir=tmp_path / "chain",
        )
        with supervisor:
            supervisor.ingest_bucket(*buckets_of(elements)[0])
            status = supervisor.status()
            assert status["supervised"] is True
            assert status["backend"] == "process"
            assert status["num_shards"] == 2
            assert [shard["alive"] for shard in status["shards"]] == [True, True]
            assert status["healthy"] is True
            assert status["heartbeat"]["running"] is False
            assert status["recoveries"] == 0
            assert status["wal"]["entries"] == 1
            assert status["chain"]["segments"] == 0

    def test_ha_config_resolves_from_engine_config(self):
        model, _ = build_stream(seed=3)
        tuned = HAConfig(heartbeat_interval=9.0)
        config = EngineConfig(
            backend="sharded",
            processor=PROCESSOR,
            cluster=ClusterConfig(num_shards=2, backend="process"),
            ha=tuned,
        )
        supervisor = ClusterSupervisor(KSIREngine(model, config))
        with supervisor:
            assert supervisor.ha_config is tuned

    def test_process_stream_uses_shared_bucketing(self):
        model, elements = build_stream(seed=19)
        buckets = buckets_of(elements)
        reference = reference_run(model, buckets)
        try:
            supervisor = ClusterSupervisor(KSIREngine(model, sharded_config()))
            with supervisor:
                supervisor.process_stream(elements)
                assert (
                    supervisor.engine.buckets_processed
                    == reference.buckets_processed
                )
                assert (
                    supervisor.engine.elements_processed
                    == reference.elements_processed
                )
        finally:
            reference.close()
