"""The columnar state store: unit tests plus columnar == objects equivalence.

Three layers of proof:

* :class:`repro.store.ElementStore` unit behaviour — row interning with
  free-row recycling, array growth, follower adjacency and CSR export,
  topic change epochs;
* :class:`repro.store.ColumnarWindow` tracks :class:`ActiveWindow`
  operation-for-operation on random streams (hypothesis);
* end-to-end: engines configured with ``store="columnar"`` and
  ``store="objects"`` produce equal ranked lists, dirty-topic accounting
  and query results (within 1e-9) on all three execution backends, and
  the v2 checkpoint format round-trips with v1 read compatibility in both
  directions.
"""

from __future__ import annotations

import json
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, KSIREngine, ServiceConfig
from repro.cluster import ClusterConfig
from repro.core.element import SocialElement
from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.query import KSIRQuery
from repro.core.scoring import ScoringConfig
from repro.core.window import ActiveWindow
from repro.store import ColumnarWindow, ElementStore

from tests.conftest import build_processor, build_reference_stream

SCORING = ScoringConfig(lambda_weight=0.5, eta=2.0)


def make_element(element_id, timestamp, references=()):
    return SocialElement(
        element_id=element_id,
        timestamp=timestamp,
        tokens=("word",),
        references=tuple(references),
        topic_distribution=np.array([1.0]),
    )


# ---------------------------------------------------------------------------
# ElementStore
# ---------------------------------------------------------------------------


class TestElementStore:
    def test_acquire_and_release_recycle_rows(self):
        store = ElementStore(num_topics=3, initial_capacity=2)
        row_a = store.acquire(10, 5)
        row_b = store.acquire(11, 6)
        assert len(store) == 2
        assert store.row_of(10) == row_a
        assert store.element_id_at(row_b) == 11
        released = store.release(10)
        assert released == row_a
        assert store.free_row_count == 1
        # The freed row is recycled for the next acquire.
        row_c = store.acquire(12, 7)
        assert row_c == row_a
        assert store.element_id_at(row_c) == 12
        assert store.last_activity_of(row_c) == 7
        assert store.validate()

    def test_growth_preserves_contents(self):
        store = ElementStore(num_topics=2, initial_capacity=2)
        for element_id in range(40):
            store.acquire(element_id, element_id)
        assert store.capacity >= 40
        assert len(store) == 40
        for element_id in range(40):
            assert store.timestamp_of(store.row_of(element_id)) == element_id
        assert store.validate()

    def test_follower_adjacency_and_counts(self):
        store = ElementStore(num_topics=2)
        parent = store.acquire(1, 1)
        follower = store.acquire(2, 2)
        store.set_in_window(follower, True)
        assert store.add_follower(parent, follower)
        assert not store.add_follower(parent, follower)  # already present
        assert store.follower_count(parent) == 1
        assert store.follower_ids(parent) == (2,)
        assert store.discard_follower(parent, follower)
        assert not store.discard_follower(parent, follower)
        assert store.follower_count(parent) == 0
        assert store.validate()

    def test_followers_csr_is_sorted_and_segmented(self):
        store = ElementStore(num_topics=2)
        rows = {eid: store.acquire(eid, eid) for eid in (1, 2, 3, 4)}
        for follower in (4, 3, 2):
            store.set_in_window(rows[follower], True)
            store.add_follower(rows[1], rows[follower])
        store.add_follower(rows[2], rows[4])
        indptr, follower_ids = store.followers_csr(store.rows_of([1, 2, 3]))
        assert indptr.tolist() == [0, 3, 4, 4]
        assert follower_ids.tolist() == [2, 3, 4, 4]

    def test_profile_matrix_rows(self):
        store = ElementStore(num_topics=4)
        row = store.acquire(7, 1)
        assert not store.has_profile(row)
        store.set_profile(row, {1: 0.25, 3: 0.75})
        assert store.has_profile(row)
        assert store.profile_matrix[row].tolist() == [0.0, 0.25, 0.0, 0.75]
        store.release(7)
        assert store.profile_matrix[row].tolist() == [0.0, 0.0, 0.0, 0.0]

    def test_topic_epochs(self):
        store = ElementStore(num_topics=5)
        assert store.dirty_topics_since(0) == ()
        store.mark_topics_dirty([1, 3])
        cursor = store.epoch
        assert store.dirty_topics_since(0) == (1, 3)
        store.mark_topics_dirty([3, 4])
        assert store.dirty_topics_since(cursor) == (3, 4)
        assert store.dirty_topics_since(0) == (1, 3, 4)
        assert store.dirty_topics_since(store.epoch) == ()

    def test_vectorised_scans(self):
        store = ElementStore(num_topics=1)
        for element_id, timestamp in ((1, 1), (2, 5), (3, 9)):
            row = store.acquire(element_id, timestamp)
            store.set_in_window(row, True)
        assert store.ids_at(store.expired_window_rows(6)).tolist() == [1, 2]
        assert store.ids_at(store.inactive_rows(6)).tolist() == [1, 2]
        assert store.window_count == 3

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ElementStore(num_topics=0)
        with pytest.raises(ValueError):
            ElementStore(num_topics=1, initial_capacity=0)


# ---------------------------------------------------------------------------
# ColumnarWindow ≡ ActiveWindow
# ---------------------------------------------------------------------------


def assert_windows_equal(columnar: ColumnarWindow, objects: ActiveWindow):
    assert sorted(columnar.active_ids()) == sorted(objects.active_ids())
    assert sorted(columnar.window_ids()) == sorted(objects.window_ids())
    assert columnar.active_count == objects.active_count
    assert columnar.window_count == objects.window_count
    assert columnar.current_time == objects.current_time
    for element_id in objects.active_ids():
        assert columnar.last_activity(element_id) == objects.last_activity(element_id)
        assert sorted(columnar.followers_of(element_id)) == sorted(
            objects.followers_of(element_id)
        )
        assert columnar.follower_count(element_id) == objects.follower_count(element_id)
        assert columnar.in_window(element_id) == objects.in_window(element_id)
    snap_a = columnar.followers_snapshot()
    snap_b = objects.followers_snapshot()
    assert snap_a.keys() == snap_b.keys()
    for element_id, follower_ids in snap_b.items():
        assert sorted(snap_a[element_id]) == sorted(follower_ids)
    assert columnar.validate()
    assert objects.validate()


class TestColumnarWindowEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_elements=st.integers(min_value=4, max_value=30),
        window_length=st.integers(min_value=2, max_value=8),
        bucket=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_tracks_active_window(self, seed, num_elements, window_length, bucket):
        _, elements = build_reference_stream(seed, num_elements, 2, 8)
        columnar = ColumnarWindow(window_length, archive_windows=2, num_topics=2)
        objects = ActiveWindow(window_length, archive_windows=2)
        for start in range(0, num_elements, bucket):
            members = elements[start : start + bucket]
            for element in members:
                touched_a = columnar.insert(element)
                touched_b = objects.insert(element)
                assert touched_a == touched_b
            end_time = members[-1].timestamp
            removed_a = columnar.advance_to(end_time)
            removed_b = objects.advance_to(end_time)
            assert sorted(removed_a) == sorted(removed_b)
            assert sorted(columnar.take_touched_by_expiry()) == sorted(
                objects.take_touched_by_expiry()
            )
            assert_windows_equal(columnar, objects)

    def test_intra_bucket_forward_reference_stays_dangling(self):
        """A reference to an element arriving later in the same bucket is
        dangling at its insertion point on every path (regression: the bulk
        row pre-interning must not resolve it)."""
        first = make_element(1, 5, references=(2,))
        second = make_element(2, 6)
        columnar = ColumnarWindow(10, num_topics=1)
        objects = ActiveWindow(10)
        touched_lists, _ = columnar.insert_many([first, second])
        touched_objects = [objects.insert(first), objects.insert(second)]
        assert touched_lists == touched_objects == [(), ()]
        columnar.advance_to(6)
        objects.advance_to(6)
        assert_windows_equal(columnar, objects)
        assert columnar.followers_of(2) == ()

    def test_forward_reference_to_archived_element_reactivates(self):
        """A forward reference to an id that expired earlier (still archived)
        re-activates the archived precedent, like the element-wise path."""
        for window_length in (3,):
            columnar = ColumnarWindow(window_length, archive_windows=8, num_topics=1)
            objects = ActiveWindow(window_length, archive_windows=8)
            original = make_element(2, 1)
            for window in (columnar, objects):
                window.insert(original)
                window.advance_to(1)
                removed = window.advance_to(10)  # id 2 expires, stays archived
                assert 2 in removed
            referencer = make_element(5, 11, references=(2,))
            repost = make_element(2, 12)
            touched_lists, _ = columnar.insert_many([referencer, repost])
            touched_objects = [objects.insert(referencer), objects.insert(repost)]
            assert touched_lists == touched_objects == [(2,), ()]
            columnar.advance_to(12)
            objects.advance_to(12)
            assert_windows_equal(columnar, objects)
            assert sorted(columnar.followers_of(2)) == [5]

    def test_forward_reference_processor_equivalence(self):
        """End-to-end: forward references in one bucket leave identical
        ranked lists on columnar-batched, columnar-sequential and objects."""
        model, elements = build_reference_stream(41, 12, 2, 8)
        # Rewrite element 3 to reference element 7 (arrives later, same
        # bucket of 6) and element 9 to reference element 1 (backward).
        elements = list(elements)
        elements[3] = replace(elements[3], references=(7,))
        elements[9] = replace(elements[9], references=(1,))
        buckets = bucketise(elements, 6)

        states = {}
        for store, batched in (
            ("columnar", True), ("columnar", False), ("objects", True)
        ):
            config = ProcessorConfig(
                window_length=8, bucket_length=6, scoring=SCORING,
                store=store, batched_ingest=batched,
            )
            engine = KSIREngine(model, EngineConfig(processor=config))
            for members, end_time in buckets:
                engine.ingest_bucket(members, end_time)
            index = engine.backend.processor.ranked_lists
            states[(store, batched)] = {
                topic: index.items(topic) for topic in range(index.num_topics)
            }
        reference = states[("objects", True)]
        for key, state in states.items():
            assert state.keys() == reference.keys()
            for topic, items in reference.items():
                got = state[topic]
                assert [e for e, _ in got] == [e for e, _ in items], (key, topic)
                for (eid, expected), (_, actual) in zip(items, got):
                    assert abs(actual - expected) <= 1e-9, (key, topic, eid)

    def test_repost_with_dropped_reference_retires_the_edge(self):
        """Re-posting a window member with changed references must retire
        the old edges on both paths (regression: a leaked edge survived the
        member's expiry and, on the columnar store, was misattributed to
        whatever element later recycled the freed row)."""
        def scenario(window):
            window.insert(make_element(1, 1))
            window.insert(make_element(3, 1))
            window.insert(make_element(2, 2, references=(1, 3)))
            window.advance_to(2)
            # Re-post id 2, dropping the reference to 1 (keeping 3).
            window.insert(make_element(2, 3, references=(3,)))
            removed_touched = sorted(window.take_touched_by_expiry())
            window.advance_to(3)
            return removed_touched

        columnar = ColumnarWindow(10, num_topics=1)
        objects = ActiveWindow(10)
        # Parent 1 lost its edge; parent 3's edge was retired-and-re-added
        # (marked for a no-op re-score).  Both paths agree.
        assert scenario(columnar) == scenario(objects) == [1, 3]
        assert columnar.followers_of(1) == objects.followers_of(1) == ()
        assert sorted(columnar.followers_of(3)) == sorted(objects.followers_of(3)) == [2]
        assert_windows_equal(columnar, objects)
        # Expire 2 and recycle its row with a fresh element: the dead edge
        # must not resurface pointing at the recycled row.
        for window in (columnar, objects):
            window.advance_to(20)
            window.insert(make_element(99, 21))
            window.advance_to(21)
        assert columnar.followers_of(1) == objects.followers_of(1) == ()
        assert columnar.followers_of(3) == objects.followers_of(3) == ()
        assert_windows_equal(columnar, objects)

    def test_repost_inside_one_batched_bucket_matches_elementwise(self):
        """Intra-bucket re-posts with changed references behave identically
        on insert_many and on the element-wise paths."""
        bucket = [
            make_element(1, 1),
            make_element(2, 2, references=(1,)),
            make_element(2, 3, references=()),
        ]
        columnar = ColumnarWindow(10, num_topics=1)
        objects = ActiveWindow(10)
        touched_lists, _ = columnar.insert_many(list(bucket))
        touched_objects = [objects.insert(element) for element in bucket]
        assert touched_lists == touched_objects == [(), (1,), ()]
        assert sorted(columnar.take_touched_by_expiry()) == sorted(
            objects.take_touched_by_expiry()
        ) == [1]
        columnar.advance_to(3)
        objects.advance_to(3)
        assert columnar.followers_of(1) == objects.followers_of(1) == ()
        assert_windows_equal(columnar, objects)

    def test_repost_keeps_influence_in_ranked_lists(self):
        """A re-posted element that still has in-window followers must keep
        the influence component in its ranked-list tuples (regression: the
        insert reset it to the semantic-only score), identically on all
        four store × ingest-path variants — including when the referencing
        follower and the re-post land in the same bucket."""
        model, _ = build_reference_stream(5, 4, 2, 8)

        def element(element_id, timestamp, references=()):
            return SocialElement(
                element_id, timestamp, ("w0", "w1"),
                references=tuple(references),
                topic_distribution=np.array([0.6, 0.4]),
            )

        scenarios = {
            "separate-buckets": [
                ([element(1, 1), element(2, 2, (1,))], 2),
                ([element(1, 3)], 3),  # re-post; 2 still follows 1
            ],
            "same-bucket": [
                ([element(1, 1)], 1),
                ([element(2, 2, (1,)), element(1, 3)], 3),
            ],
        }
        for name, buckets in scenarios.items():
            states = {}
            for store in ("columnar", "objects"):
                for batched in (True, False):
                    config = ProcessorConfig(
                        window_length=20, bucket_length=2, scoring=SCORING,
                        store=store, batched_ingest=batched,
                    )
                    processor = build_processor(model, config)
                    for members, end_time in buckets:
                        processor.process_bucket(members, end_time)
                    assert processor.window.followers_of(1) == (2,), (name, store)
                    states[(store, batched)] = processor.ranked_lists.scores_of(1)
            reference = states[("objects", False)]
            # The stored score must exceed the semantic-only component ...
            lambda_only = {
                topic: SCORING.lambda_weight
                * build_processor(
                    model, ProcessorConfig(window_length=20, bucket_length=2,
                                           scoring=SCORING)
                )._builder.build(element(1, 3)).semantic_score(topic)
                for topic in reference
            }
            for topic, score in reference.items():
                assert score > lambda_only[topic] + 1e-12, (name, topic)
            # ... and all four variants agree within 1e-9.
            for key, scores in states.items():
                assert scores.keys() == reference.keys(), (name, key)
                for topic, score in reference.items():
                    assert abs(scores[topic] - score) <= 1e-9, (name, key, topic)

    def test_state_dict_round_trips_across_representations(self):
        _, elements = build_reference_stream(3, 20, 2, 8)
        columnar = ColumnarWindow(4, archive_windows=2, num_topics=2)
        objects = ActiveWindow(4, archive_windows=2)
        for element in elements:
            columnar.insert(element)
            objects.insert(element)
            columnar.advance_to(element.timestamp)
            objects.advance_to(element.timestamp)
        # columnar (array/CSR) state restores into an objects window...
        restored_objects = ActiveWindow(4, archive_windows=2)
        restored_objects.restore_state(columnar.state_dict())
        assert_windows_equal(columnar, restored_objects)
        # ...and objects (JSON-list) state restores into a columnar window.
        restored_columnar = ColumnarWindow(4, archive_windows=2, num_topics=2)
        restored_columnar.restore_state(objects.state_dict())
        assert_windows_equal(restored_columnar, objects)

    def test_rejects_backward_advance_and_bad_config(self):
        window = ColumnarWindow(5, num_topics=1)
        window.insert(make_element(1, 10))
        window.advance_to(10)
        with pytest.raises(ValueError):
            window.advance_to(9)
        with pytest.raises(ValueError):
            ColumnarWindow(0, num_topics=1)
        with pytest.raises(ValueError):
            ColumnarWindow(5, archive_windows=0, num_topics=1)


# ---------------------------------------------------------------------------
# Processor / backend equivalence
# ---------------------------------------------------------------------------


def bucketise(elements, bucket_length):
    buckets = []
    for start in range(0, len(elements), bucket_length):
        members = elements[start : start + bucket_length]
        buckets.append((members, members[-1].timestamp))
    return buckets


def engine_config(backend: str, store: str, window_length: int, shards: int = 2):
    processor = ProcessorConfig(
        window_length=window_length,
        bucket_length=2,
        scoring=SCORING,
        store=store,
    )
    cluster = (
        ClusterConfig(num_shards=shards, backend="serial")
        if backend == "sharded"
        else None
    )
    return EngineConfig(
        backend=backend,
        processor=processor,
        cluster=cluster,
        service=ServiceConfig(max_workers=1),
    )


backend_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=8, max_value=20),      # elements
    st.integers(min_value=2, max_value=4),       # topics
    st.sampled_from(["local", "sharded", "service"]),
)


class TestColumnarBackendEquivalence:
    @given(params=backend_params)
    @settings(max_examples=25, deadline=None)
    def test_query_results_match_objects_store(self, params):
        seed, num_elements, num_topics, backend = params
        model, elements = build_reference_stream(seed, num_elements, num_topics, 10)
        window_length = max(3, num_elements // 2)  # forces expiry
        buckets = bucketise(elements, 2)
        query = KSIRQuery(
            k=3, vector=np.arange(1, num_topics + 1, dtype=float) / num_topics
        )

        results = {}
        for store in ("columnar", "objects"):
            with KSIREngine(
                model, engine_config(backend, store, window_length)
            ) as engine:
                if backend == "service":
                    engine.register(query, query_id="standing", algorithm="mttd",
                                    epsilon=0.2)
                for members, end_time in buckets:
                    engine.ingest_bucket(members, end_time)
                answers = {
                    algorithm: engine.query(query, algorithm=algorithm, epsilon=0.2)
                    for algorithm in ("mttd", "greedy")
                }
                standing = (
                    engine.result("standing").result if backend == "service" else None
                )
                results[store] = (engine.active_count, answers, standing)

        active_a, answers_a, standing_a = results["columnar"]
        active_b, answers_b, standing_b = results["objects"]
        assert active_a == active_b
        for algorithm, result_a in answers_a.items():
            result_b = answers_b[algorithm]
            assert result_a.element_ids == result_b.element_ids, algorithm
            assert abs(result_a.score - result_b.score) <= 1e-9
        if standing_a is not None:
            assert standing_a.element_ids == standing_b.element_ids
            assert abs(standing_a.score - standing_b.score) <= 1e-9

    def test_ranked_lists_and_dirty_topics_match(self, tiny_dataset):
        def replay(store):
            config = ProcessorConfig(
                window_length=1800,
                bucket_length=600,
                scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
                store=store,
            )
            processor = build_processor(tiny_dataset.topic_model, config)
            processor.process_stream(tiny_dataset.stream)
            return processor

        columnar, objects = replay("columnar"), replay("objects")
        index_a, index_b = columnar.ranked_lists, objects.ranked_lists
        assert index_a.element_count == index_b.element_count
        for topic in range(index_a.num_topics):
            items_a, items_b = index_a.items(topic), index_b.items(topic)
            assert [e for e, _ in items_a] == [e for e, _ in items_b], topic
            for (eid, score_a), (_, score_b) in zip(items_a, items_b):
                assert abs(score_a - score_b) <= 1e-9, (topic, eid)
        assert index_a.take_dirty_topics() == index_b.take_dirty_topics()
        # The store's epoch stamps cover the same topics the dirty sets saw.
        store = columnar.store
        assert store is not None and store.epoch > 0
        assert columnar.window.validate()

    def test_store_epochs_drive_the_scheduler(self):
        model, elements = build_reference_stream(11, 24, 3, 10)
        buckets = bucketise(elements, 2)
        query = KSIRQuery(k=3, vector=np.array([1.0, 0.0, 0.0]))
        plans = {}
        for store in ("columnar", "objects"):
            with KSIREngine(
                model, engine_config("service", store, window_length=12)
            ) as engine:
                engine.register(query, query_id="standing")
                service = engine.service_engine
                plans[store] = [
                    service.ingest_bucket(members, end_time)
                    for members, end_time in buckets
                ]
        for plan_a, plan_b in zip(plans["columnar"], plans["objects"]):
            assert plan_a.dirty_topics == plan_b.dirty_topics
            assert plan_a.query_ids == plan_b.query_ids


# ---------------------------------------------------------------------------
# Configurable archive horizon + restore pruning
# ---------------------------------------------------------------------------


class TestArchiveHorizon:
    @pytest.mark.parametrize("store", ["columnar", "objects"])
    def test_archive_windows_threads_through_config(self, store):
        model, elements = build_reference_stream(7, 30, 2, 8)
        config = ProcessorConfig(
            window_length=4, bucket_length=2, scoring=SCORING,
            store=store, archive_windows=2,
        )
        engine = KSIREngine(model, EngineConfig(processor=config))
        for members, end_time in bucketise(elements, 2):
            engine.ingest_bucket(members, end_time)
        window = engine.backend.processor.window
        horizon = window._archive_horizon  # noqa: SLF001 - white-box check
        assert horizon == 2 * 4
        cutoff = engine.current_time - horizon
        for element in window._archive.values():
            assert (
                element.timestamp >= cutoff
                or element.element_id in window.active_ids()
            )

    def test_invalid_archive_windows_rejected(self):
        with pytest.raises(ValueError):
            ProcessorConfig(archive_windows=0)
        with pytest.raises(ValueError):
            ProcessorConfig(store="mystery")

    @pytest.mark.parametrize("store", ["columnar", "objects"])
    def test_restore_prunes_archive_beyond_horizon(self, store, tmp_path):
        model, elements = build_reference_stream(13, 40, 2, 8)
        generous = ProcessorConfig(
            window_length=4, bucket_length=2, scoring=SCORING,
            store=store, archive_windows=8,
        )
        engine = KSIREngine(model, EngineConfig(processor=generous))
        for members, end_time in bucketise(elements, 2):
            engine.ingest_bucket(members, end_time)
        path = engine.save(tmp_path / "ckpt")

        tight = EngineConfig(processor=replace(generous, archive_windows=1))
        restored = KSIREngine.load(path, config=tight)
        window = restored.backend.processor.window
        cutoff = restored.current_time - 1 * 4
        stale = [
            element_id
            for element_id, element in window._archive.items()
            if element.timestamp < cutoff and element_id not in window.active_ids()
        ]
        assert stale == [], "restore carried archived elements beyond the horizon"
        # The generous engine itself kept more history than the tight one.
        wide_archive = engine.backend.processor.window._archive
        assert len(wide_archive) > len(window._archive)


# ---------------------------------------------------------------------------
# Checkpoint v2 + v1 compatibility across store representations
# ---------------------------------------------------------------------------


def _replay_engine(model, config, buckets):
    engine = KSIREngine(model, config)
    for members, end_time in buckets:
        engine.ingest_bucket(members, end_time)
    return engine


class TestCheckpointCompatibility:
    def make_setup(self, seed=17):
        model, elements = build_reference_stream(seed, 24, 3, 10)
        buckets = bucketise(elements, 2)
        query = KSIRQuery(k=3, vector=np.array([0.4, 0.3, 0.3]))
        return model, buckets, query

    def assert_same_answers(self, engine_a, engine_b, query):
        assert engine_a.active_count == engine_b.active_count
        for algorithm in ("mttd", "greedy"):
            result_a = engine_a.query(query, algorithm=algorithm, epsilon=0.2)
            result_b = engine_b.query(query, algorithm=algorithm, epsilon=0.2)
            assert result_a.element_ids == result_b.element_ids
            assert abs(result_a.score - result_b.score) <= 1e-9

    def test_columnar_checkpoint_restores_into_objects_engine(self, tmp_path):
        model, buckets, query = self.make_setup()
        columnar_config = engine_config("local", "columnar", window_length=12)
        engine = _replay_engine(model, columnar_config, buckets[:8])
        path = engine.save(tmp_path / "ckpt")
        assert (path / "state_arrays.npz").exists()

        objects_config = engine_config("local", "objects", window_length=12)
        restored = KSIREngine.load(path, config=objects_config)
        for members, end_time in buckets[8:]:
            engine.ingest_bucket(members, end_time)
            restored.ingest_bucket(members, end_time)
        self.assert_same_answers(engine, restored, query)

    def test_objects_checkpoint_restores_into_columnar_engine(self, tmp_path):
        model, buckets, query = self.make_setup()
        objects_config = engine_config("local", "objects", window_length=12)
        engine = _replay_engine(model, objects_config, buckets[:8])
        path = engine.save(tmp_path / "ckpt")
        assert not (path / "state_arrays.npz").exists()

        columnar_config = engine_config("local", "columnar", window_length=12)
        restored = KSIREngine.load(path, config=columnar_config)
        for members, end_time in buckets[8:]:
            engine.ingest_bucket(members, end_time)
            restored.ingest_bucket(members, end_time)
        self.assert_same_answers(engine, restored, query)

    def test_v1_checkpoint_still_loads(self, tmp_path):
        """A checkpoint downgraded to the v1 on-disk shape loads cleanly."""
        model, buckets, query = self.make_setup()
        objects_config = engine_config("local", "objects", window_length=12)
        engine = _replay_engine(model, objects_config, buckets[:8])
        path = engine.save(tmp_path / "ckpt")

        # Rewrite the manifest exactly as a v1 writer produced it: version 1
        # and no store/archive keys in the processor configuration.
        manifest = json.loads((path / "MANIFEST.json").read_text())
        manifest["version"] = 1
        manifest["config"]["processor"].pop("store")
        manifest["config"]["processor"].pop("archive_windows")
        (path / "MANIFEST.json").write_text(json.dumps(manifest))

        restored = KSIREngine.load(path)  # defaults select the columnar store
        assert restored.backend.processor.store is not None
        for members, end_time in buckets[8:]:
            engine.ingest_bucket(members, end_time)
            restored.ingest_bucket(members, end_time)
        self.assert_same_answers(engine, restored, query)

    def test_sharded_columnar_checkpoint_round_trip(self, tmp_path):
        model, buckets, query = self.make_setup(seed=23)
        config = engine_config("sharded", "columnar", window_length=12)
        uninterrupted = _replay_engine(model, config, buckets)
        first = _replay_engine(model, config, buckets[:8])
        path = first.save(tmp_path / "ckpt")
        first.close()
        resumed = KSIREngine.load(path)
        for members, end_time in buckets[8:]:
            resumed.ingest_bucket(members, end_time)
        self.assert_same_answers(uninterrupted, resumed, query)
        uninterrupted.close()
        resumed.close()
