"""HTTP surface of the serving tier (repro.server.app) — in-process ASGI.

Driven through :class:`repro.server.testing.TestClient`, so these tests
exercise the exact scope/receive/send messages a production ASGI server
would deliver, without sockets.  A two-topic orthogonal model keeps every
scenario hand-checkable: ``alpha`` elements live purely on topic 0 and
``beta`` elements purely on topic 1.
"""

from __future__ import annotations

import numpy as np
import pytest
from server_harness import element, ingest_payload, make_engine

from repro.api import EngineConfig, KSIREngine
from repro.server.app import KSIRServer, create_app
from repro.server.runtime_store import RuntimeStore
from repro.server.testing import TestClient
from repro.topics.model import MatrixTopicModel
from repro.topics.vocabulary import Vocabulary


@pytest.fixture()
def app() -> KSIRServer:
    application = create_app(make_engine())
    yield application
    application.close()


@pytest.fixture()
def client(app: KSIRServer) -> TestClient:
    with TestClient(app) as test_client:
        yield test_client


class TestHealthAndStats:
    def test_health(self, client: TestClient) -> None:
        response = client.get("/health")
        assert response.status == 200
        payload = response.json()
        assert payload["status"] == "ok"
        assert payload["backend"] == "service"
        assert payload["standing_queries"] == 0

    def test_stats(self, client: TestClient) -> None:
        response = client.get("/stats")
        assert response.status == 200
        assert "stats" in response.json()

    def test_unknown_path_is_404(self, client: TestClient) -> None:
        assert client.get("/nope").status == 404

    def test_wrong_method_is_405(self, client: TestClient) -> None:
        assert client.request("PUT", "/queries").status == 405


class _FakeSupervisor:
    """Stands in for repro.ha.ClusterSupervisor: only status() is consulted."""

    def __init__(self, healthy: bool = True) -> None:
        self.healthy = healthy

    def status(self) -> dict:
        return {
            "supervised": True,
            "healthy": self.healthy,
            "shards": [
                {"shard_id": 0, "alive": True},
                {"shard_id": 1, "alive": self.healthy},
            ],
        }


class TestProbes:
    def test_healthz_is_alive(self, client: TestClient) -> None:
        response = client.get("/healthz")
        assert response.status == 200
        assert response.json() == {"status": "alive"}

    def test_readyz_without_supervisor(self, client: TestClient) -> None:
        response = client.get("/readyz")
        assert response.status == 200
        payload = response.json()
        assert payload["status"] == "ready"
        assert payload["backend"] == "service"

    def test_readyz_with_healthy_supervisor(self) -> None:
        application = create_app(make_engine(), supervisor=_FakeSupervisor())
        try:
            with TestClient(application) as client:
                assert client.get("/readyz").status == 200
        finally:
            application.close()

    def test_readyz_degraded_when_shard_dead(self) -> None:
        supervisor = _FakeSupervisor(healthy=False)
        application = create_app(make_engine(), supervisor=supervisor)
        try:
            with TestClient(application) as client:
                response = client.get("/readyz")
                assert response.status == 503
                payload = response.json()
                assert payload["status"] == "degraded"
                assert payload["dead_shards"] == [1]
                # Liveness is unaffected: the process still serves.
                assert client.get("/healthz").status == 200
        finally:
            application.close()

    def test_telemetry_includes_supervisor_status(self) -> None:
        application = create_app(make_engine(), supervisor=_FakeSupervisor())
        try:
            with TestClient(application) as client:
                payload = client.get("/telemetry").json()
                assert payload["supervisor"]["supervised"] is True
                assert payload["supervisor"]["healthy"] is True
        finally:
            application.close()


class TestQueryCrud:
    def test_register_list_get_delete(self, client: TestClient) -> None:
        created = client.post(
            "/queries", {"keywords": ["alpha"], "k": 2, "query_id": "q-alpha"}
        )
        assert created.status == 201
        body = created.json()["query"]
        assert body["query_id"] == "q-alpha"
        # Keyword inference may smooth mass across topics; the keyword's
        # own topic must dominate the support either way.
        assert 0 in body["topics"]

        listing = client.get("/queries")
        assert listing.status == 200
        assert listing.json()["count"] == 1

        fetched = client.get("/queries/q-alpha")
        assert fetched.status == 200
        assert fetched.json()["query"]["result"] is None

        deleted = client.delete("/queries/q-alpha")
        assert deleted.status == 200
        assert deleted.json() == {"removed": True, "query_id": "q-alpha"}
        assert client.get("/queries/q-alpha").status == 404
        assert client.delete("/queries/q-alpha").status == 404

    def test_register_by_vector(self, client: TestClient) -> None:
        created = client.post("/queries", {"vector": [0.0, 1.0], "k": 1})
        assert created.status == 201
        assert created.json()["query"]["topics"] == [1]

    def test_register_rejects_malformed(self, client: TestClient) -> None:
        assert client.post("/queries", {"k": 2}).status == 422
        assert (
            client.post(
                "/queries", {"keywords": ["a"], "vector": [1.0], "k": 2}
            ).status
            == 422
        )
        assert client.post("/queries", {"keywords": ["a"]}).status == 422
        assert (
            client.post("/queries", {"keywords": ["a"], "k": 2, "bogus": 1}).status
            == 422
        )
        assert client.post("/queries", {"keywords": ["a"], "k": 0}).status == 422

    def test_duplicate_query_id_conflicts(self, client: TestClient) -> None:
        assert (
            client.post(
                "/queries", {"vector": [1.0, 0.0], "k": 1, "query_id": "dup"}
            ).status
            == 201
        )
        second = client.post(
            "/queries", {"vector": [1.0, 0.0], "k": 1, "query_id": "dup"}
        )
        assert second.status in (400, 409)

    def test_result_of_unknown_query_is_404(self, client: TestClient) -> None:
        assert client.get("/queries/unknown/result").status == 404


class TestIngestAndQuery:
    def test_ingest_reports_updated_queries(self, client: TestClient) -> None:
        client.post("/queries", {"vector": [1.0, 0.0], "k": 2, "query_id": "qa"})
        response = client.post(
            "/ingest/bucket", ingest_payload(1, element(1, 1, 0))
        )
        assert response.status == 200
        summary = response.json()
        assert summary["ingested"] == 1
        assert summary["bucket"] == 1
        assert summary["updated"] == ["qa"]

        result = client.get("/queries/qa/result")
        assert result.status == 200
        standing = result.json()["result"]
        assert standing["result"]["element_ids"] == [1]
        assert standing["fresh"] is True

    def test_ingest_skips_unaffected_queries(self, client: TestClient) -> None:
        client.post("/queries", {"vector": [1.0, 0.0], "k": 2, "query_id": "qa"})
        client.post("/ingest/bucket", ingest_payload(1, element(1, 1, 0)))
        # A pure topic-1 bucket cannot change a topic-0 answer.
        response = client.post(
            "/ingest/bucket", ingest_payload(2, element(2, 2, 1))
        )
        assert response.json()["updated"] == []

    def test_ad_hoc_query(self, client: TestClient) -> None:
        client.post("/ingest/bucket", ingest_payload(1, element(1, 1, 0)))
        response = client.post("/query", {"keywords": ["alpha"], "k": 1})
        assert response.status == 200
        assert response.json()["result"]["element_ids"] == [1]

    def test_ingest_rejects_malformed(self, client: TestClient) -> None:
        assert client.post("/ingest/bucket", {"elements": []}).status == 422
        assert (
            client.post(
                "/ingest/bucket", {"end_time": 1, "elements": [{"nope": 1}]}
            ).status
            == 422
        )

    def test_non_monotonic_ingest_is_client_error(self, client: TestClient) -> None:
        assert (
            client.post("/ingest/bucket", ingest_payload(5, element(1, 5, 0))).status
            == 200
        )
        response = client.post(
            "/ingest/bucket", ingest_payload(3, element(2, 3, 0))
        )
        assert response.status in (400, 422)


class TestCheckpoint:
    def test_save_and_load_roundtrip(self, client: TestClient, tmp_path) -> None:
        client.post("/queries", {"vector": [1.0, 0.0], "k": 2, "query_id": "qa"})
        client.post("/ingest/bucket", ingest_payload(1, element(1, 1, 0)))
        path = str(tmp_path / "ckpt")

        saved = client.post("/checkpoint/save", {"path": path})
        assert saved.status == 200

        client.post("/ingest/bucket", ingest_payload(2, element(2, 2, 0)))
        assert client.get("/health").json()["buckets_processed"] == 2

        restored = client.post("/checkpoint/load", {"path": path})
        assert restored.status == 200
        assert restored.json()["buckets_processed"] == 1
        assert restored.json()["standing_queries"] == 1
        # The restored engine keeps serving: the standing query is intact.
        assert client.get("/queries/qa").status == 200

    def test_load_missing_path_is_client_error(self, client: TestClient) -> None:
        response = client.post("/checkpoint/load", {"path": "/nonexistent/ckpt"})
        assert response.status in (400, 404)

    def test_save_requires_path(self, client: TestClient) -> None:
        assert client.post("/checkpoint/save", {}).status == 422


class TestMetricsAndTelemetry:
    def test_metrics_exposition(self, client: TestClient) -> None:
        client.get("/health")
        client.post("/queries", {"vector": [1.0, 0.0], "k": 1, "query_id": "qa"})
        client.post("/ingest/bucket", ingest_payload(1, element(1, 1, 0)))

        response = client.get("/metrics")
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/plain")
        text = response.body.decode()
        assert "ksir_http_requests_total" in text
        assert 'endpoint="GET /health",status="200"' in text
        assert "ksir_service_evaluations" in text

        # The kernel layer exports under its own namespace, not flattened
        # into ksir_engine_*: one backend gauge plus per-kernel counters.
        assert 'ksir_kernel_backend{backend="num' in text
        assert 'ksir_kernel_calls_total{kernel="ranked_merge"}' in text
        assert 'ksir_kernel_time_ns_total{kernel="window_scan"}' in text
        assert "ksir_engine_kernels" not in text

        # Histogram buckets must be cumulative and end at the total count.
        rows = [
            line for line in text.splitlines()
            if line.startswith(
                'ksir_http_request_duration_ms_bucket{endpoint="GET /health"'
            )
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in rows]
        assert counts == sorted(counts)
        assert rows[-1].split("le=")[1].startswith('"+Inf"')
        count_line = next(
            line for line in text.splitlines()
            if line.startswith(
                'ksir_http_request_duration_ms_count{endpoint="GET /health"'
            )
        )
        assert counts[-1] == int(count_line.rsplit(" ", 1)[1])

    def test_telemetry_document(self, client: TestClient) -> None:
        client.get("/health")
        response = client.get("/telemetry")
        assert response.status == 200
        payload = response.json()
        assert set(payload) == {
            "engine",
            "service",
            "streams",
            "push",
            "runtime",
            "supervisor",
        }
        assert payload["push"]["subscribers"] == 0
        assert payload["supervisor"] is None  # no supervised cluster attached
        assert "GET /health" in payload["runtime"]["latency"]

    def test_latency_recorded_per_endpoint(self, app: KSIRServer) -> None:
        with TestClient(app) as client:
            client.get("/health")
            client.get("/health")
        histograms = app.store.histograms()
        assert histograms["GET /health"]["count"] == 2


class TestConstruction:
    def test_requires_service_backend(self) -> None:
        vocabulary = Vocabulary(["alpha", "beta"])
        model = MatrixTopicModel(
            vocabulary, np.array([[1.0, 0.0], [0.0, 1.0]]), normalize=False
        )
        engine = KSIREngine(model, EngineConfig(backend="local"))
        try:
            with pytest.raises(ValueError, match="service"):
                create_app(engine)
        finally:
            engine.close()

    def test_external_store_survives_close(self, tmp_path) -> None:
        store = RuntimeStore(tmp_path / "runtime.db")
        application = create_app(make_engine(), store=store)
        application.close()
        # The app flushed but did not close the externally owned store.
        store.increment("still_open")
        assert store.counters()["still_open"][""] == 1
        store.close()
