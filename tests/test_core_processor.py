"""Tests for the stream processor (Figure 4 architecture)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.query import KSIRQuery
from repro.core.stream import SocialStream
from tests.conftest import PAPER_SCORING, PAPER_WINDOW_LENGTH, build_processor


class TestProcessorConfig:
    def test_defaults(self):
        config = ProcessorConfig()
        assert config.window_length == 24 * 3600
        assert config.bucket_length == 15 * 60
        assert config.default_algorithm == "mttd"

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ProcessorConfig(window_length=0)
        with pytest.raises(ValueError):
            ProcessorConfig(bucket_length=0)
        with pytest.raises(ValueError):
            ProcessorConfig(window_length=10, bucket_length=20)


class TestStreamIngestion:
    def test_paper_stream_active_window(self, paper_processor):
        assert paper_processor.current_time == 8
        assert set(paper_processor.window.active_ids()) == {1, 2, 3, 5, 6, 7, 8}
        assert paper_processor.elements_processed == 8
        assert paper_processor.buckets_processed == 8
        assert paper_processor.active_count == 7

    def test_ranked_lists_match_figure5(self, paper_processor):
        index = paper_processor.ranked_lists
        assert index.score(0, 3) == pytest.approx(0.65, abs=0.011)
        assert index.score(1, 1) == pytest.approx(0.56, abs=0.011)
        assert index.score(1, 2) == pytest.approx(0.48, abs=0.011)
        assert 4 not in index

    def test_expired_elements_removed_from_index(self, paper_processor):
        assert 4 not in paper_processor.ranked_lists
        assert 4 not in paper_processor.window

    def test_reactivated_parent_reenters_index(self, paper_topic_model, paper_elements):
        """e2 expires at t=6 but is re-activated when e7 references it at t=7."""
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = build_processor(paper_topic_model, config)
        by_id = {element.element_id: element for element in paper_elements}
        # Feed elements one bucket at a time and check e2's status around t=6/7.
        for time in range(1, 9):
            bucket = [by_id[time]] if time in by_id else []
            processor.process_bucket(bucket, end_time=time)
            if time == 6:
                assert 2 not in processor.window
                assert 2 not in processor.ranked_lists
            if time == 7:
                assert 2 in processor.window
                assert 2 in processor.ranked_lists
        assert processor.ranked_lists.score(1, 2) == pytest.approx(0.48, abs=0.011)

    def test_topic_inference_applied_when_missing(self, paper_topic_model, paper_elements):
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = build_processor(paper_topic_model, config)
        stripped = [
            type(element)(
                element_id=element.element_id,
                timestamp=element.timestamp,
                tokens=element.tokens,
                references=element.references,
                topic_distribution=None,
            )
            for element in paper_elements
        ]
        processor.process_stream(SocialStream(stripped))
        assert processor.active_count == 7
        # Inferred distributions put the soccer tweet e1 mostly on topic 2.
        snapshot = processor.snapshot()
        assert snapshot.profile(1).topic_probability(1) > 0.5

    def test_process_stream_until(self, paper_topic_model, paper_elements):
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = build_processor(paper_topic_model, config)
        processor.process_stream(SocialStream(paper_elements), until=5)
        assert processor.current_time == 5
        assert set(processor.window.window_ids()) == {2, 3, 4, 5}

    def test_empty_stream_is_noop(self, paper_topic_model):
        processor = build_processor(paper_topic_model)
        processor.process_stream(SocialStream())
        assert processor.current_time is None
        assert processor.active_count == 0

    def test_timers_collect_samples(self, paper_processor):
        assert paper_processor.ingest_timer.count == 8
        assert paper_processor.update_timer.count > 0


class TestQueryProcessing:
    def test_query_with_ksir_query_object(self, paper_processor):
        query = KSIRQuery(k=2, vector=np.array([0.5, 0.5]))
        result = paper_processor.query(query, algorithm="mttd")
        assert set(result.element_ids) == {1, 3}
        assert result.score == pytest.approx(0.65, abs=0.01)
        assert result.algorithm == "mttd"
        assert result.active_elements == 7
        assert result.elapsed_ms >= 0.0

    def test_query_with_raw_vector(self, paper_processor):
        result = paper_processor.query([0.5, 0.5], k=2, algorithm="celf")
        assert set(result.element_ids) == {1, 3}

    def test_query_with_raw_vector_requires_k(self, paper_processor):
        with pytest.raises(ValueError):
            paper_processor.query([0.5, 0.5])

    def test_default_algorithm_used(self, paper_processor):
        result = paper_processor.query([0.5, 0.5], k=2)
        assert result.algorithm == "mttd"

    def test_algorithm_instance_accepted(self, paper_processor):
        from repro.core.algorithms import MTTS

        result = paper_processor.query([0.5, 0.5], k=2, algorithm=MTTS(epsilon=0.3))
        assert set(result.element_ids) == {1, 3}

    def test_epsilon_override(self, paper_processor):
        result = paper_processor.query([0.5, 0.5], k=2, algorithm="mtts", epsilon=0.5)
        assert len(result.element_ids) <= 2

    def test_all_registry_algorithms_run(self, paper_processor):
        for name in ("greedy", "celf", "sieve", "topk", "mtts", "mttd"):
            result = paper_processor.query([0.3, 0.7], k=3, algorithm=name)
            assert len(result.element_ids) <= 3

    def test_result_elements_materialisation(self, paper_processor):
        result = paper_processor.query([0.5, 0.5], k=2, algorithm="mttd")
        elements = paper_processor.result_elements(result)
        assert {element.element_id for element in elements} == set(result.element_ids)

    def test_snapshot_is_frozen(self, paper_processor):
        snapshot = paper_processor.snapshot()
        before = snapshot.active_count
        # Further ingestion must not affect the existing snapshot.
        paper_processor.process_bucket([], end_time=20)
        assert snapshot.active_count == before
        assert paper_processor.active_count == 0

    def test_objective_binding(self, paper_processor):
        objective = paper_processor.objective(np.array([0.5, 0.5]))
        assert objective.context.active_count == paper_processor.active_count


class TestSnapshotCaching:
    def test_snapshot_reused_while_window_unchanged(self, paper_topic_model, paper_elements):
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = build_processor(paper_topic_model, config)
        processor.process_stream(SocialStream(paper_elements))
        first = processor.snapshot()
        assert processor.snapshot() is first

    def test_snapshot_invalidated_by_new_bucket(self, paper_topic_model, paper_elements):
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = build_processor(paper_topic_model, config)
        processor.process_stream(SocialStream(paper_elements))
        first = processor.snapshot()
        processor.process_bucket([], end_time=9)
        second = processor.snapshot()
        assert second is not first
        # e1 (ts=1, last referenced at 5) expired at t=9: the new snapshot
        # reflects the slide while the old one stays frozen.
        assert second.active_count < first.active_count

    def test_repeated_queries_share_one_snapshot(self, paper_topic_model, paper_elements):
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = build_processor(paper_topic_model, config)
        processor.process_stream(SocialStream(paper_elements))
        first = processor.query([0.5, 0.5], k=2, algorithm="mttd")
        second = processor.query([0.5, 0.5], k=2, algorithm="celf")
        assert set(first.element_ids) == set(second.element_ids) == {1, 3}


class TestParentReactivation:
    """The re-activation branch of process_bucket (Algorithm 1).

    When an expired parent is referenced by a new element, the processor must
    rebuild its profile from the window archive and re-insert its
    ranked-list tuples before refreshing its influence score.
    """

    def _drive(self, paper_topic_model, elements, until):
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = build_processor(paper_topic_model, config)
        by_id = {element.element_id: element for element in elements}
        for time in range(1, until + 1):
            bucket = [by_id[time]] if time in by_id else []
            processor.process_bucket(bucket, end_time=time)
        return processor

    def test_profile_rebuilt_and_tuples_reinserted(self, paper_topic_model, paper_elements):
        # e2 (t=2) expires at t=6; e7 (t=7) references it, re-activating it.
        processor = self._drive(paper_topic_model, paper_elements, until=6)
        assert 2 not in processor.ranked_lists
        assert 2 not in processor.snapshot()

        by_id = {element.element_id: element for element in paper_elements}
        processor.process_bucket([by_id[7]], end_time=7)

        # The parent is active again with a freshly built profile...
        snapshot = processor.snapshot()
        assert 2 in snapshot
        profile = snapshot.profile(2)
        assert profile.topic_probability(1) == pytest.approx(0.74)
        # ...its ranked-list tuples are back with the refreshed influence
        # score delta_2(e2) = 0.5*R_2(e2) + 0.25*p_2(e2)*p_2(e7) ~= 0.39
        # (only e7 follows it at t=7; e8's reference arrives later and lifts
        # it to Figure 5's 0.48), and its last activity is the referencing
        # element's time, so it survives until t = 7 + T.
        assert 2 in processor.ranked_lists
        assert processor.ranked_lists.score(1, 2) == pytest.approx(0.393, abs=0.011)
        assert processor.ranked_lists.last_activity(2) == 7
        assert processor.window.followers_of(2) == (7,)

    def test_reactivated_parent_is_queryable(self, paper_topic_model, paper_elements):
        processor = self._drive(paper_topic_model, paper_elements, until=7)
        result = processor.query([0.0, 1.0], k=2, algorithm="mttd")
        # At t=7 the topic-2 ranking is e1 (0.56) then the re-activated e2
        # (0.39): an expired-then-referenced element is immediately
        # answerable again.
        assert result.element_ids == (1, 2)

    def test_reactivation_with_inferred_distributions(self, paper_topic_model, paper_elements):
        # The same replay with topic distributions stripped: the parent's
        # archived copy carries the distribution inferred on first arrival,
        # and re-activation rebuilds the profile from it.
        stripped = [
            type(element)(
                element_id=element.element_id,
                timestamp=element.timestamp,
                tokens=element.tokens,
                references=element.references,
                topic_distribution=None,
            )
            for element in paper_elements
        ]
        processor = self._drive(paper_topic_model, stripped, until=7)
        assert 2 in processor.ranked_lists
        snapshot = processor.snapshot()
        # The soccer tweet e2 infers mostly topic 2 and lands on its list.
        assert snapshot.profile(2).topic_probability(1) > 0.5
        assert processor.ranked_lists.score(1, 2) > 0.0

    def test_dirty_topics_cover_reactivation(self, paper_topic_model, paper_elements):
        processor = self._drive(paper_topic_model, paper_elements, until=6)
        processor.ranked_lists.take_dirty_topics()
        by_id = {element.element_id: element for element in paper_elements}
        processor.process_bucket([by_id[7]], end_time=7)
        dirty = set(processor.ranked_lists.take_dirty_topics())
        # The topics of both the re-activated parent (e2) and the new
        # follower (e7) are reported, so the serving layer re-evaluates any
        # standing query they could affect.
        snapshot = processor.snapshot()
        assert set(snapshot.profile(2).topics) <= dirty
        assert set(snapshot.profile(7).topics) <= dirty
