"""Tests for the stream processor (Figure 4 architecture)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.query import KSIRQuery
from repro.core.stream import SocialStream
from tests.conftest import PAPER_SCORING, PAPER_WINDOW_LENGTH


class TestProcessorConfig:
    def test_defaults(self):
        config = ProcessorConfig()
        assert config.window_length == 24 * 3600
        assert config.bucket_length == 15 * 60
        assert config.default_algorithm == "mttd"

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            ProcessorConfig(window_length=0)
        with pytest.raises(ValueError):
            ProcessorConfig(bucket_length=0)
        with pytest.raises(ValueError):
            ProcessorConfig(window_length=10, bucket_length=20)


class TestStreamIngestion:
    def test_paper_stream_active_window(self, paper_processor):
        assert paper_processor.current_time == 8
        assert set(paper_processor.window.active_ids()) == {1, 2, 3, 5, 6, 7, 8}
        assert paper_processor.elements_processed == 8
        assert paper_processor.buckets_processed == 8
        assert paper_processor.active_count == 7

    def test_ranked_lists_match_figure5(self, paper_processor):
        index = paper_processor.ranked_lists
        assert index.score(0, 3) == pytest.approx(0.65, abs=0.011)
        assert index.score(1, 1) == pytest.approx(0.56, abs=0.011)
        assert index.score(1, 2) == pytest.approx(0.48, abs=0.011)
        assert 4 not in index

    def test_expired_elements_removed_from_index(self, paper_processor):
        assert 4 not in paper_processor.ranked_lists
        assert 4 not in paper_processor.window

    def test_reactivated_parent_reenters_index(self, paper_topic_model, paper_elements):
        """e2 expires at t=6 but is re-activated when e7 references it at t=7."""
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = KSIRProcessor(paper_topic_model, config)
        by_id = {element.element_id: element for element in paper_elements}
        # Feed elements one bucket at a time and check e2's status around t=6/7.
        for time in range(1, 9):
            bucket = [by_id[time]] if time in by_id else []
            processor.process_bucket(bucket, end_time=time)
            if time == 6:
                assert 2 not in processor.window
                assert 2 not in processor.ranked_lists
            if time == 7:
                assert 2 in processor.window
                assert 2 in processor.ranked_lists
        assert processor.ranked_lists.score(1, 2) == pytest.approx(0.48, abs=0.011)

    def test_topic_inference_applied_when_missing(self, paper_topic_model, paper_elements):
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = KSIRProcessor(paper_topic_model, config)
        stripped = [
            type(element)(
                element_id=element.element_id,
                timestamp=element.timestamp,
                tokens=element.tokens,
                references=element.references,
                topic_distribution=None,
            )
            for element in paper_elements
        ]
        processor.process_stream(SocialStream(stripped))
        assert processor.active_count == 7
        # Inferred distributions put the soccer tweet e1 mostly on topic 2.
        snapshot = processor.snapshot()
        assert snapshot.profile(1).topic_probability(1) > 0.5

    def test_process_stream_until(self, paper_topic_model, paper_elements):
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = KSIRProcessor(paper_topic_model, config)
        processor.process_stream(SocialStream(paper_elements), until=5)
        assert processor.current_time == 5
        assert set(processor.window.window_ids()) == {2, 3, 4, 5}

    def test_empty_stream_is_noop(self, paper_topic_model):
        processor = KSIRProcessor(paper_topic_model)
        processor.process_stream(SocialStream())
        assert processor.current_time is None
        assert processor.active_count == 0

    def test_timers_collect_samples(self, paper_processor):
        assert paper_processor.ingest_timer.count == 8
        assert paper_processor.update_timer.count > 0


class TestQueryProcessing:
    def test_query_with_ksir_query_object(self, paper_processor):
        query = KSIRQuery(k=2, vector=np.array([0.5, 0.5]))
        result = paper_processor.query(query, algorithm="mttd")
        assert set(result.element_ids) == {1, 3}
        assert result.score == pytest.approx(0.65, abs=0.01)
        assert result.algorithm == "mttd"
        assert result.active_elements == 7
        assert result.elapsed_ms >= 0.0

    def test_query_with_raw_vector(self, paper_processor):
        result = paper_processor.query([0.5, 0.5], k=2, algorithm="celf")
        assert set(result.element_ids) == {1, 3}

    def test_query_with_raw_vector_requires_k(self, paper_processor):
        with pytest.raises(ValueError):
            paper_processor.query([0.5, 0.5])

    def test_default_algorithm_used(self, paper_processor):
        result = paper_processor.query([0.5, 0.5], k=2)
        assert result.algorithm == "mttd"

    def test_algorithm_instance_accepted(self, paper_processor):
        from repro.core.algorithms import MTTS

        result = paper_processor.query([0.5, 0.5], k=2, algorithm=MTTS(epsilon=0.3))
        assert set(result.element_ids) == {1, 3}

    def test_epsilon_override(self, paper_processor):
        result = paper_processor.query([0.5, 0.5], k=2, algorithm="mtts", epsilon=0.5)
        assert len(result.element_ids) <= 2

    def test_all_registry_algorithms_run(self, paper_processor):
        for name in ("greedy", "celf", "sieve", "topk", "mtts", "mttd"):
            result = paper_processor.query([0.3, 0.7], k=3, algorithm=name)
            assert len(result.element_ids) <= 3

    def test_result_elements_materialisation(self, paper_processor):
        result = paper_processor.query([0.5, 0.5], k=2, algorithm="mttd")
        elements = paper_processor.result_elements(result)
        assert {element.element_id for element in elements} == set(result.element_ids)

    def test_snapshot_is_frozen(self, paper_processor):
        snapshot = paper_processor.snapshot()
        before = snapshot.active_count
        # Further ingestion must not affect the existing snapshot.
        paper_processor.process_bucket([], end_time=20)
        assert snapshot.active_count == before
        assert paper_processor.active_count == 0

    def test_objective_binding(self, paper_processor):
        objective = paper_processor.objective(np.array([0.5, 0.5]))
        assert objective.context.active_count == paper_processor.active_count
