"""Tests of the ``repro.bench`` subsystem.

Covers :class:`BenchSpec` registration and validation, runner execution
with a synthetic (dataset-free) spec, the ``BENCH_<name>.json`` schema
round-trip and validation, and the ``compare()`` classification of
regressions, improvements and within-tolerance changes — including the
calibration-based cross-machine normalisation and the timer-noise floor.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    BenchReport,
    BenchSpec,
    Outcome,
    Scenario,
    ScenarioResult,
    TierPolicy,
    compare,
    compare_many,
    get_spec,
    iter_specs,
    run_spec,
    spec_names,
    validate_report_dict,
)
from repro.bench.compare import (
    ADDED,
    IMPROVEMENT,
    REGRESSION,
    REMOVED,
    SKIPPED,
    WITHIN_TOLERANCE,
)
from repro.bench.report import percentile
from repro.bench.spec import register, unregister


def _trivial_spec(name: str, check=None, baseline=None) -> BenchSpec:
    """A dataset-free spec: the measured callable just counts invocations."""

    def setup(params, seed):
        state = {"calls": 0}

        def measured():
            state["calls"] += 1
            return Outcome(
                units=params.get("units", 10),
                value=state["calls"],
                metrics={"calls": float(state["calls"])},
                artefact=f"artefact of {params.get('label', 'x')}",
            )

        return measured

    tier = TierPolicy(
        scenarios=(
            Scenario("fast", {"units": 10, "label": "fast"}),
            Scenario("slow", {"units": 10, "label": "slow"}),
        ),
        warmup=1,
        repeat=3,
    )
    return BenchSpec(
        name=name,
        description="synthetic test spec",
        setup=setup,
        tiers={"tiny": tier, "full": tier},
        baseline=baseline,
        check=check,
        tags=("synthetic",),
    )


# ---------------------------------------------------------------------------
# Spec registration and validation
# ---------------------------------------------------------------------------


class TestSpecRegistry:
    def test_register_and_lookup(self):
        spec = _trivial_spec("synthetic_lookup")
        register(spec)
        try:
            assert get_spec("synthetic_lookup") is spec
            assert "synthetic_lookup" in spec_names()
            assert spec in iter_specs(tags=("synthetic",))
        finally:
            unregister("synthetic_lookup")

    def test_duplicate_registration_rejected(self):
        spec = _trivial_spec("synthetic_dup")
        register(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register(_trivial_spec("synthetic_dup"))
        finally:
            unregister("synthetic_dup")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no_such_benchmark"):
            get_spec("no_such_benchmark")

    def test_missing_tier_rejected(self):
        tier = TierPolicy(scenarios=(Scenario("only", {}),))
        with pytest.raises(ValueError, match="missing tier"):
            BenchSpec(name="bad", description="", setup=lambda p, s: lambda: None,
                      tiers={"tiny": tier})

    def test_unknown_baseline_rejected(self):
        tier = TierPolicy(scenarios=(Scenario("only", {}),))
        with pytest.raises(ValueError, match="baseline"):
            BenchSpec(name="bad", description="", setup=lambda p, s: lambda: None,
                      tiers={"tiny": tier, "full": tier}, baseline="absent")

    def test_duplicate_scenarios_rejected(self):
        tier = TierPolicy(scenarios=(Scenario("dup", {}), Scenario("dup", {})))
        with pytest.raises(ValueError, match="duplicate"):
            BenchSpec(name="bad", description="", setup=lambda p, s: lambda: None,
                      tiers={"tiny": tier, "full": tier})

    def test_builtin_suite_is_registered(self):
        names = spec_names()
        assert "micro_stream_update" in names
        assert "micro_query_latency" in names
        assert "kernel_hotpath" in names
        assert len(names) >= 18
        micro = iter_specs(tags=("micro",))
        assert {spec.name for spec in micro} == {
            "micro_stream_update", "micro_query_latency",
        }
        kernels = iter_specs(tags=("kernels",))
        assert {spec.name for spec in kernels} == {"kernel_hotpath"}


# ---------------------------------------------------------------------------
# Runner behaviour
# ---------------------------------------------------------------------------


class TestRunner:
    def test_run_spec_produces_valid_report(self, tmp_path):
        spec = _trivial_spec("synthetic_run", baseline="fast")
        report, values = run_spec(spec, tier="tiny", seed=7,
                                  environment={"calibration_ms": 10.0})
        assert report.benchmark == "synthetic_run"
        assert report.tier == "tiny"
        assert report.seed == 7
        assert report.checks_passed
        assert [s.name for s in report.scenarios] == ["fast", "slow"]
        for scenario in report.scenarios:
            # warmup=1 + repeat=3: the measured callable ran four times and
            # three samples were recorded.
            assert len(scenario.samples_ms) == 3
            assert scenario.units == 10
            assert scenario.metrics["calls"] == 4.0
        # values carries the unserialised check payloads and artefacts.
        assert values["fast"] == 4
        assert values["__artefacts__"]["slow"] == "artefact of slow"
        # the baseline scenario itself gets no speedup figure.
        assert report.scenario("fast").speedup_vs_baseline is None
        assert report.scenario("slow").speedup_vs_baseline is not None
        # round-trips through disk, validating on the way in.
        path = report.save(tmp_path)
        assert path.name == "BENCH_synthetic_run.json"
        loaded = BenchReport.load(path)
        assert loaded.to_dict() == report.to_dict()

    def test_failing_check_marks_report(self):
        def check(values, report):
            raise AssertionError("synthetic failure")

        spec = _trivial_spec("synthetic_fail", check=check)
        report, _values = run_spec(spec, tier="tiny",
                                   environment={"calibration_ms": 10.0})
        assert not report.checks_passed
        assert "synthetic failure" in (report.check_error or "")
        # the failure is persisted in the JSON form too.
        data = report.to_dict()
        assert data["checks_passed"] is False
        assert data["check_error"] == "synthetic failure"


# ---------------------------------------------------------------------------
# Report schema
# ---------------------------------------------------------------------------


def _report(
    name="bench", p50s=(100.0,), calibration=None, tier="tiny", cpu_count=None,
    kernels=None,
) -> BenchReport:
    scenarios = [
        ScenarioResult(
            name=f"s{i}",
            params={},
            warmup=0,
            repeat=1,
            samples_ms=[p50],
            units=100,
        )
        for i, p50 in enumerate(p50s)
    ]
    environment = {"python": "3.x"}
    if calibration is not None:
        environment["calibration_ms"] = calibration
    if cpu_count is not None:
        environment["cpu_count"] = cpu_count
    if kernels is not None:
        environment["kernels"] = kernels
    return BenchReport(
        benchmark=name, tier=tier, seed=1, created_unix=0.0,
        environment=environment, scenarios=scenarios,
    )


class TestReportSchema:
    def test_percentiles(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 0.5) == 2.5
        assert percentile([1.0], 0.95) == 1.0
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 0.95) == pytest.approx(95.05)
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_scenario_statistics(self):
        scenario = ScenarioResult(
            name="s", params={}, warmup=0, repeat=4,
            samples_ms=[10.0, 20.0, 30.0, 40.0], units=50,
        )
        assert scenario.p50_ms == 25.0
        assert scenario.mean_ms == 25.0
        # 50 units at 25 ms median -> 2000 units/sec.
        assert scenario.throughput_per_sec == pytest.approx(2000.0)

    def test_validation_rejects_malformed_documents(self):
        good = _report().to_dict()
        validate_report_dict(good)

        bad = dict(good, schema="repro-bench/999")
        with pytest.raises(ValueError, match="schema"):
            validate_report_dict(bad)

        bad = {key: value for key, value in good.items() if key != "environment"}
        with pytest.raises(ValueError, match="environment"):
            validate_report_dict(bad)

        bad = dict(good, scenarios=[])
        with pytest.raises(ValueError, match="no scenarios"):
            validate_report_dict(bad)

        scenario = dict(good["scenarios"][0])
        del scenario["p50_ms"]
        with pytest.raises(ValueError, match="p50_ms"):
            validate_report_dict(dict(good, scenarios=[scenario]))

        twice = [dict(good["scenarios"][0]), dict(good["scenarios"][0])]
        with pytest.raises(ValueError, match="duplicate"):
            validate_report_dict(dict(good, scenarios=twice))

    def test_json_round_trip_preserves_everything(self, tmp_path):
        report = _report(p50s=(12.5, 80.0), calibration=22.0)
        report.scenarios[1].speedup_vs_baseline = 1.75
        report.scenarios[1].metrics = {"extra": 3.5}
        path = report.save(tmp_path)
        raw = json.loads(path.read_text())
        assert raw["schema"] == "repro-bench/1"
        loaded = BenchReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        assert loaded.scenario("s1").speedup_vs_baseline == 1.75
        assert loaded.scenario("s1").metrics == {"extra": 3.5}
        assert loaded.calibration_ms == 22.0


# ---------------------------------------------------------------------------
# Comparison / regression gating
# ---------------------------------------------------------------------------


class TestCompare:
    def test_classification(self):
        old = _report(p50s=(100.0, 100.0, 100.0))
        new = _report(p50s=(210.0, 101.0, 60.0))
        result = compare(old, new, tolerance=0.25)
        by_name = {entry.scenario: entry for entry in result.entries}
        assert by_name["s0"].status == REGRESSION  # 2.1x slower
        assert by_name["s1"].status == WITHIN_TOLERANCE
        assert by_name["s2"].status == IMPROVEMENT
        assert result.has_regressions
        assert len(result.regressions) == 1

    def test_injected_2x_slowdown_is_a_regression(self):
        old = _report(p50s=(50.0,))
        new = _report(p50s=(100.0,))
        result = compare(old, new, tolerance=0.25)
        assert result.entries[0].status == REGRESSION
        assert result.entries[0].ratio == pytest.approx(2.0)

    def test_calibration_normalisation_forgives_slower_machines(self):
        # The candidate machine is uniformly 2x slower (calibration 2x):
        # identical relative performance must not be flagged.
        old = _report(p50s=(100.0,), calibration=20.0)
        new = _report(p50s=(200.0,), calibration=40.0)
        result = compare(old, new, tolerance=0.25)
        assert result.normalised
        assert result.entries[0].status == WITHIN_TOLERANCE
        assert result.entries[0].ratio == pytest.approx(1.0)
        # ... but a genuine regression on the slower machine still trips.
        new = _report(p50s=(400.0,), calibration=40.0)
        assert compare(old, new, tolerance=0.25).has_regressions
        # raw mode ignores the calibration.
        raw = compare(old, _report(p50s=(200.0,), calibration=40.0),
                      tolerance=0.25, use_calibration=False)
        assert not raw.normalised
        assert raw.entries[0].status == REGRESSION

    def test_noise_floor_suppresses_microsecond_scenarios(self):
        old = _report(p50s=(0.2,))
        new = _report(p50s=(0.6,))  # 3x "slower" but sub-millisecond
        result = compare(old, new, tolerance=0.25, min_p50_ms=1.0)
        assert result.entries[0].status == WITHIN_TOLERANCE

    def test_added_and_removed_scenarios(self):
        old = _report(p50s=(100.0, 100.0))
        new = _report(p50s=(100.0,))
        statuses = {entry.scenario: entry.status
                    for entry in compare(old, new).entries}
        assert statuses["s1"] == REMOVED
        statuses = {entry.scenario: entry.status
                    for entry in compare(new, old).entries}
        assert statuses["s1"] == ADDED
        # neither direction is a regression by itself.
        assert not compare(old, new).has_regressions

    def test_cpu_count_mismatch_warns_without_failing(self):
        # Calibration normalises single-thread speed, not core count — a
        # baseline recorded on a 1-CPU box must be flagged against an
        # 8-CPU candidate, but the mismatch alone is never a regression.
        old = _report(p50s=(100.0,), cpu_count=1)
        new = _report(p50s=(100.0,), cpu_count=8)
        result = compare(old, new, tolerance=0.25)
        assert len(result.warnings) == 1
        assert "cpu_count mismatch" in result.warnings[0]
        assert "baseline 1" in result.warnings[0]
        assert not result.has_regressions
        assert "warning: " in result.render()

    def test_matching_or_absent_cpu_counts_stay_silent(self):
        assert not compare(
            _report(cpu_count=4), _report(cpu_count=4)
        ).warnings
        assert not compare(_report(), _report(cpu_count=4)).warnings
        assert not compare(_report(), _report()).warnings

    def test_kernel_backend_mismatch_warns_without_failing(self):
        # A baseline recorded on the NumPy reference is not comparable to
        # a Numba-compiled candidate (or vice versa): the ratio would mix
        # the code change with the kernel-backend change.
        old = _report(p50s=(100.0,), kernels="numpy")
        new = _report(p50s=(100.0,), kernels="numba")
        result = compare(old, new, tolerance=0.25)
        assert len(result.warnings) == 1
        assert "kernel backend mismatch" in result.warnings[0]
        assert not result.has_regressions
        assert not compare(
            _report(kernels="numpy"), _report(kernels="numpy")
        ).warnings

    def test_tier_mismatch_skips_classification(self):
        # A full-tier baseline against a tiny-tier candidate compares
        # different workload sizes: scenarios are skipped (never bogus
        # improvements or regressions) and a warning is emitted.
        old = _report(p50s=(5000.0,), tier="full")
        new = _report(p50s=(100.0,), tier="tiny")
        result = compare(old, new, tolerance=0.25)
        assert [entry.status for entry in result.entries] == [SKIPPED]
        assert result.entries[0].ratio is None
        assert not result.has_regressions
        assert any("tier mismatch" in warning for warning in result.warnings)

    def test_compare_many_propagates_environment_warnings(self):
        old = [_report("a", cpu_count=1), _report("b", cpu_count=2)]
        new = [_report("a", cpu_count=8), _report("b", cpu_count=2)]
        result = compare_many(old, new, tolerance=0.25)
        assert len(result.warnings) == 1
        assert result.warnings[0].startswith("a: ")

    def test_compare_many_matches_by_benchmark(self):
        old = [_report("a", p50s=(100.0,)), _report("b", p50s=(100.0,))]
        new = [_report("a", p50s=(300.0,)), _report("c", p50s=(10.0,))]
        result = compare_many(old, new, tolerance=0.25)
        statuses = {(e.benchmark, e.scenario): e.status for e in result.entries}
        assert statuses[("a", "s0")] == REGRESSION
        assert statuses[("b", "*")] == REMOVED
        assert statuses[("c", "*")] == ADDED
        assert result.has_regressions
        rendered = result.render()
        assert "regression" in rendered
