"""Tests for the experiment harness (configs, runners, tables, figures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.ablations import lazy_buffer_ablation, ranked_list_ablation
from repro.experiments.config import (
    DATASET_ETA,
    DEFAULT_EFFECTIVENESS_CONFIG,
    DEFAULT_EFFICIENCY_CONFIG,
    EffectivenessConfig,
    EfficiencyConfig,
    SweepValues,
    quick_effectiveness_config,
    quick_efficiency_config,
)
from repro.experiments.figures import (
    figure7_time_vs_epsilon,
    figure9_time_vs_k,
    figure10_evaluation_ratio,
    figure14_update_time,
)
from repro.experiments.reporting import render_figure, render_series, render_table
from repro.experiments.runner import (
    EffectivenessExperiment,
    EfficiencyExperiment,
    clear_caches,
    load_dataset,
    prepare_processor,
)
from repro.experiments.tables import dataset_statistics_table, quantitative_table, user_study_table

TINY_EFFICIENCY = EfficiencyConfig(
    datasets=("tiny",),
    num_queries=3,
    window_hours=3,
    seed=5,
    sweeps=SweepValues(
        epsilon=(0.1, 0.3),
        k=(2, 4),
        num_topics=(4, 6),
        window_hours=(2, 3),
    ),
)

TINY_EFFECTIVENESS = EffectivenessConfig(
    datasets=("tiny",),
    num_user_study_queries=3,
    num_quantitative_queries=3,
    window_hours=3,
    seed=5,
)


class TestConfigs:
    def test_default_configs_reference_known_datasets(self):
        for name in DEFAULT_EFFICIENCY_CONFIG.datasets:
            assert name in DATASET_ETA
        for name in DEFAULT_EFFECTIVENESS_CONFIG.datasets:
            assert name in DATASET_ETA

    def test_window_and_bucket_lengths(self):
        config = EfficiencyConfig(window_hours=6, bucket_minutes=30)
        assert config.window_length == 6 * 3600
        assert config.bucket_length == 30 * 60

    def test_scoring_for_uses_dataset_eta(self):
        config = EfficiencyConfig()
        assert config.scoring_for("aminer-small").eta == DATASET_ETA["aminer-small"]
        assert config.scoring_for("unknown-dataset").eta == 20.0

    def test_with_overrides(self):
        config = DEFAULT_EFFICIENCY_CONFIG.with_overrides(k=25)
        assert config.k == 25
        assert DEFAULT_EFFICIENCY_CONFIG.k == 10

    def test_quick_configs(self):
        assert quick_efficiency_config().num_queries <= 10
        assert quick_effectiveness_config().num_user_study_queries <= 10

    def test_sweep_defaults_match_paper(self):
        sweeps = SweepValues()
        assert sweeps.epsilon == (0.1, 0.2, 0.3, 0.4, 0.5)
        assert sweeps.k == (5, 10, 15, 20, 25)
        assert sweeps.window_hours == (6, 12, 18, 24, 30)


class TestReporting:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["alpha", 1.2345], ["b", 10]], title="T")
        assert "T" in text
        assert "alpha" in text
        assert text.count("+") >= 6

    def test_render_series(self):
        text = render_series("k", [1, 2], {"mtts": [0.1, 0.2], "mttd": [0.3, 0.4]})
        assert "mtts" in text and "mttd" in text

    def test_render_figure_multiple_panels(self):
        text = render_figure(
            "Fig", "x", [1], {"panel-a": {"s": [1.0]}, "panel-b": {"s": [2.0]}}
        )
        assert "[panel-a]" in text and "[panel-b]" in text

    def test_cell_formatting_extremes(self):
        text = render_table(["v"], [[0.0000001], [123456.0], [0], [True], ["txt"]])
        assert "txt" in text


class TestRunnersOnTinyDataset:
    def test_load_dataset_is_cached(self):
        clear_caches()
        first = load_dataset("tiny", seed=5)
        second = load_dataset("tiny", seed=5)
        assert first is second
        different = load_dataset("tiny", seed=6)
        assert different is not first

    def test_load_dataset_with_topic_override(self):
        dataset = load_dataset("tiny", seed=5, num_topics=4)
        assert dataset.topic_model.num_topics == 4

    def test_prepare_processor_replays_fraction(self):
        dataset, processor = prepare_processor(
            "tiny", seed=5, window_length=3 * 3600, bucket_length=900,
            lambda_weight=0.5, eta=1.0, replay_fraction=0.5,
        )
        assert processor.current_time is not None
        assert processor.current_time <= dataset.stream.end_time
        assert processor.active_count > 0

    def test_efficiency_experiment_runs_all_algorithms(self):
        dataset, processor = prepare_processor(
            "tiny", seed=5, window_length=3 * 3600, bucket_length=900,
            lambda_weight=0.5, eta=1.0,
        )
        experiment = EfficiencyExperiment(dataset, processor, seed=5)
        workload = experiment.make_workload(3, k=5)
        runs = experiment.run(["celf", "mtts", "mttd", "topk"], workload, epsilon=0.2, k=5)
        assert set(runs) == {"celf", "mtts", "mttd", "topk"}
        for run in runs.values():
            assert len(run.results) == 3
            assert run.mean_time_ms >= 0.0
            assert 0.0 <= run.mean_evaluation_ratio <= 1.0
        assert runs["mttd"].mean_score >= 0.95 * runs["celf"].mean_score

    def test_efficiency_run_with_k_override(self):
        dataset, processor = prepare_processor(
            "tiny", seed=5, window_length=3 * 3600, bucket_length=900,
            lambda_weight=0.5, eta=1.0,
        )
        experiment = EfficiencyExperiment(dataset, processor, seed=5)
        workload = experiment.make_workload(2, k=5)
        runs = experiment.run(["mttd"], workload, k=3)
        assert all(len(result.element_ids) <= 3 for result in runs["mttd"].results)

    def test_effectiveness_experiment_methods_and_metrics(self):
        dataset, processor = prepare_processor(
            "tiny", seed=5, window_length=3 * 3600, bucket_length=900,
            lambda_weight=0.5, eta=1.0,
        )
        experiment = EffectivenessExperiment(dataset, processor, seed=5)
        queries = experiment.topical_queries(2, k=4)
        record = experiment.evaluate_query(queries[0])
        assert set(record.results) == set(EffectivenessExperiment.METHOD_ORDER)
        for method in EffectivenessExperiment.METHOD_ORDER:
            assert 0.0 <= record.coverage[method] <= 1.0
            assert 0.0 <= record.influence[method] <= 1.0
        summary = experiment.quantitative(queries)
        assert set(summary) == set(EffectivenessExperiment.METHOD_ORDER)

    def test_effectiveness_user_study(self):
        dataset, processor = prepare_processor(
            "tiny", seed=5, window_length=3 * 3600, bucket_length=900,
            lambda_weight=0.5, eta=1.0,
        )
        experiment = EffectivenessExperiment(dataset, processor, seed=5)
        queries = experiment.topical_queries(2, k=3)
        outcome = experiment.user_study(queries, evaluators_per_query=2, noise=0.05)
        assert outcome.num_queries == 2
        assert set(outcome.representativeness) == set(EffectivenessExperiment.METHOD_ORDER)


class TestTables:
    def test_dataset_statistics_table(self):
        table = dataset_statistics_table(datasets=("tiny",), seed=5)
        assert len(table.rows) == 1
        assert table.rows[0][0] == "tiny"
        assert "Table 3" in table.render()

    def test_quantitative_table_shape(self):
        table = quantitative_table(TINY_EFFECTIVENESS)
        assert len(table.rows) == 2  # Coverage + Influence for one dataset
        assert table.headers[2:] == list(EffectivenessExperiment.METHOD_ORDER)
        rendered = table.render()
        assert "Coverage" in rendered and "Influence" in rendered

    def test_user_study_table_shape(self):
        table = user_study_table(TINY_EFFECTIVENESS, num_queries=2)
        assert len(table.rows) == 2
        assert any("kappa" in key for key in table.notes)
        assert "Table 5" in table.render()


class TestFigures:
    def test_figure7_shape(self):
        figure = figure7_time_vs_epsilon(TINY_EFFICIENCY, num_queries=2)
        assert figure.x_values == [0.1, 0.3]
        panel = figure.panels["tiny"]
        assert set(panel) == {"mtts", "mttd"}
        assert all(len(series) == 2 for series in panel.values())
        assert "Figure 7" in figure.render()

    def test_figure9_and_series_lookup(self):
        figure = figure9_time_vs_k(TINY_EFFICIENCY, num_queries=2)
        assert set(figure.panels["tiny"]) == {"celf", "mttd", "mtts", "topk", "sieve"}
        assert len(figure.series("tiny", "celf")) == 2

    def test_figure10_ratios_within_bounds(self):
        figure = figure10_evaluation_ratio(TINY_EFFICIENCY, num_queries=2)
        for series in figure.panels["tiny"].values():
            assert all(0.0 <= value <= 1.0 for value in series)

    def test_figure14_panels(self):
        figure = figure14_update_time(TINY_EFFICIENCY)
        assert "tiny vs z" in figure.panels
        assert "tiny vs T" in figure.panels
        assert all(value >= 0.0 for value in figure.panels["tiny vs z"]["update"])


class TestAblations:
    def test_ranked_list_ablation(self):
        result = ranked_list_ablation(dataset_name="tiny", seed=5, max_operations=2000)
        assert result.baseline_value > 0.0
        assert result.variant_value > 0.0
        assert "ranked-list" in result.render()

    def test_lazy_buffer_ablation(self):
        config = TINY_EFFICIENCY
        result = lazy_buffer_ablation(dataset_name="tiny", config=config, num_queries=2)
        assert result.variant_value >= 0.0
        assert result.speedup > 0.0
