"""Shared fixtures for the k-SIR reproduction test suite.

The most important fixture family reconstructs the paper's worked example
(Table 1, Examples 3.1–3.4, Figure 5/6): eight tweets, two topics, a 16-word
vocabulary with fully specified topic-word probabilities, window length
``T = 4`` and scoring parameters ``λ = 0.5``, ``η = 2``.  The paper gives
exact intermediate values (semantic/influence scores, ranked-list tuples and
the optimal query answers), so these fixtures let the tests assert against
ground truth rather than against our own implementation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import pytest

from repro.core.element import SocialElement
from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.scoring import ProfileBuilder, ScoringConfig, ScoringContext
from repro.core.stream import SocialStream
from repro.datasets.synthetic import SyntheticDataset, SyntheticStreamGenerator
from repro.service import ServiceEngine
from repro.topics.model import MatrixTopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.deprecation import library_managed_construction


def build_processor(*args, **kwargs) -> KSIRProcessor:
    """Construct a raw KSIRProcessor through the sanctioned internal path.

    Direct construction is a hard error since the PR 4 deprecation cycle
    completed; tests that exercise processor internals go through the same
    guard the library's own call sites use.
    """
    with library_managed_construction():
        return KSIRProcessor(*args, **kwargs)


def build_service_engine(substrate, **kwargs) -> ServiceEngine:
    """Construct a raw ServiceEngine through the sanctioned internal path."""
    with library_managed_construction():
        return ServiceEngine(substrate, **kwargs)

# ---------------------------------------------------------------------------
# The paper's worked example (Table 1)
# ---------------------------------------------------------------------------

#: Topic-word probabilities of Table 1 (b)/(c): word -> (p_1(w), p_2(w)).
PAPER_TOPIC_WORDS: Dict[str, Tuple[float, float]] = {
    "asroma": (0.0, 0.03),
    "assist": (0.06, 0.04),
    "cavs": (0.09, 0.0),
    "champion": (0.1, 0.09),
    "defeat": (0.05, 0.04),
    "final": (0.11, 0.12),
    "lebron": (0.12, 0.0),
    "lfc": (0.0, 0.06),
    "manutd": (0.0, 0.07),
    "nbaplayoffs": (0.11, 0.0),
    "pl": (0.0, 0.11),
    "point": (0.15, 0.14),
    "raptors": (0.08, 0.0),
    "realmadrid": (0.0, 0.07),
    "schedule": (0.13, 0.12),
    "ucl": (0.0, 0.11),
}

#: Table 1 (a): element id -> (time, words, p_1(e), p_2(e), references).
PAPER_ELEMENTS: Dict[int, Tuple[int, Tuple[str, ...], float, float, Tuple[int, ...]]] = {
    1: (1, ("asroma", "final", "lfc", "realmadrid", "ucl"), 0.2, 0.8, ()),
    2: (2, ("champion", "manutd", "pl"), 0.26, 0.74, ()),
    3: (3, ("cavs", "defeat", "nbaplayoffs", "raptors"), 0.89, 0.11, ()),
    4: (4, ("lebron", "nbaplayoffs"), 1.0, 0.0, (3,)),
    5: (5, ("final", "lfc", "ucl"), 0.29, 0.71, (1,)),
    6: (6, ("assist", "lebron", "nbaplayoffs", "point"), 0.7, 0.3, (3,)),
    7: (7, ("champion", "pl"), 0.33, 0.67, (2,)),
    8: (8, ("nbaplayoffs", "pl", "schedule"), 0.51, 0.49, (2, 3, 6)),
}

#: The paper's example parameters: λ = 0.5, η = 2, T = 4.
PAPER_SCORING = ScoringConfig(lambda_weight=0.5, eta=2.0)
PAPER_WINDOW_LENGTH = 4


def build_paper_vocabulary() -> Vocabulary:
    """The 16-word vocabulary of Table 1, ordered w1..w16."""
    return Vocabulary(list(PAPER_TOPIC_WORDS))


def build_paper_topic_model() -> MatrixTopicModel:
    """The two-topic model of Table 1 (probabilities used exactly as given)."""
    vocabulary = build_paper_vocabulary()
    matrix = np.zeros((2, len(vocabulary)))
    for word, (p1, p2) in PAPER_TOPIC_WORDS.items():
        word_id = vocabulary.id_of(word)
        matrix[0, word_id] = p1
        matrix[1, word_id] = p2
    # normalize=False keeps the paper's numbers verbatim (they already sum to 1).
    return MatrixTopicModel(vocabulary, matrix, normalize=False)


def build_paper_elements() -> List[SocialElement]:
    """The eight elements of Table 1 with their ground-truth topic vectors."""
    elements = []
    for element_id, (timestamp, words, p1, p2, references) in PAPER_ELEMENTS.items():
        elements.append(
            SocialElement(
                element_id=element_id,
                timestamp=timestamp,
                tokens=words,
                references=references,
                topic_distribution=np.array([p1, p2]),
            )
        )
    return elements


def build_paper_context(time: int = 8) -> ScoringContext:
    """A scoring snapshot of the paper example at time ``time`` (default 8).

    The active set and in-window follower sets are derived with the same
    window rules the paper uses (T = 4, so W_8 = {e5..e8} and e4 expires).
    """
    elements = {element.element_id: element for element in build_paper_elements()}
    window_start = time - PAPER_WINDOW_LENGTH + 1
    window_ids = {
        eid for eid, element in elements.items() if window_start <= element.timestamp <= time
    }
    active_ids = set(window_ids)
    for eid in window_ids:
        active_ids.update(elements[eid].references)
    followers: Dict[int, List[int]] = {eid: [] for eid in active_ids}
    for eid in window_ids:
        for parent in elements[eid].references:
            if parent in followers:
                followers[parent].append(eid)
    builder = ProfileBuilder(build_paper_topic_model(), PAPER_SCORING)
    profiles = {eid: builder.build(elements[eid]) for eid in active_ids}
    return ScoringContext(profiles=profiles, followers=followers, config=PAPER_SCORING, time=time)


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def paper_vocabulary() -> Vocabulary:
    """The Table 1 vocabulary."""
    return build_paper_vocabulary()


@pytest.fixture(scope="session")
def paper_topic_model() -> MatrixTopicModel:
    """The Table 1 two-topic model."""
    return build_paper_topic_model()


@pytest.fixture()
def paper_elements() -> List[SocialElement]:
    """The eight Table 1 elements."""
    return build_paper_elements()


@pytest.fixture()
def paper_stream(paper_elements) -> SocialStream:
    """The Table 1 elements as a stream."""
    return SocialStream(paper_elements)


@pytest.fixture()
def paper_context() -> ScoringContext:
    """Scoring snapshot of the paper example at time 8."""
    return build_paper_context(time=8)


@pytest.fixture()
def paper_processor(paper_topic_model, paper_elements) -> KSIRProcessor:
    """A processor that has ingested the whole paper example (T=4, L=1)."""
    config = ProcessorConfig(
        window_length=PAPER_WINDOW_LENGTH,
        bucket_length=1,
        scoring=PAPER_SCORING,
    )
    processor = build_processor(paper_topic_model, config)
    processor.process_stream(SocialStream(paper_elements))
    return processor


# ---------------------------------------------------------------------------
# Random-instance helpers (shared by the api/cluster equivalence suites)
# ---------------------------------------------------------------------------


def build_reference_stream(
    seed: int, num_elements: int, num_topics: int, vocab_size: int
) -> Tuple[MatrixTopicModel, List[SocialElement]]:
    """A random topic model plus a stream with backward references.

    Elements arrive one per time unit with ground-truth topic vectors and
    up to three references to earlier elements, so sliding-window expiry,
    follower loss and parent re-activation all trigger on short windows.
    """
    rng = np.random.default_rng(seed)
    vocabulary = Vocabulary([f"w{i}" for i in range(vocab_size)])
    topic_word = rng.dirichlet(np.full(vocab_size, 0.3), size=num_topics)
    model = MatrixTopicModel(vocabulary, topic_word, normalize=True)

    elements: List[SocialElement] = []
    for element_id in range(num_elements):
        length = int(rng.integers(2, 6))
        tokens = tuple(f"w{int(i)}" for i in rng.integers(0, vocab_size, size=length))
        distribution = rng.dirichlet(np.full(num_topics, 0.3))
        num_refs = int(rng.integers(0, min(3, element_id + 1))) if element_id else 0
        references = (
            tuple(int(r) for r in rng.choice(element_id, size=num_refs, replace=False))
            if num_refs
            else ()
        )
        elements.append(
            SocialElement(
                element_id=element_id,
                timestamp=element_id + 1,
                tokens=tokens,
                references=references,
                topic_distribution=distribution,
            )
        )
    return model, elements


# ---------------------------------------------------------------------------
# Synthetic dataset fixtures (shared; generation is cached per session)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="session")
def tiny_dataset() -> SyntheticDataset:
    """A tiny synthetic dataset used by integration-style tests."""
    return SyntheticStreamGenerator.from_profile("tiny", seed=7).generate()


@pytest.fixture(scope="session")
def tiny_processor(tiny_dataset) -> KSIRProcessor:
    """A processor that has replayed the tiny dataset (3-hour window)."""
    config = ProcessorConfig(
        window_length=3 * 3600,
        bucket_length=900,
        scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
    )
    processor = build_processor(tiny_dataset.topic_model, config)
    processor.process_stream(tiny_dataset.stream)
    return processor
