"""Tests for the effectiveness-study search baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import SocialElement
from repro.search import SEARCH_REGISTRY
from repro.search.base import SearchRequest
from repro.search.diversity import DiversityAwareSearch
from repro.search.lexrank import lexrank_scores, pairwise_cosine_matrix
from repro.search.relevance import TopicRelevanceSearch, topic_cosine
from repro.search.sumblr import SumblrSummarizer, kmeans_cluster
from repro.search.tfidf import (
    TFIDFSearch,
    build_document_frequencies,
    cosine_similarity,
    tfidf_vector,
)


def make_element(element_id, tokens, topic=None, references=(), timestamp=1):
    return SocialElement(
        element_id=element_id,
        timestamp=timestamp,
        tokens=tuple(tokens),
        references=tuple(references),
        topic_distribution=None if topic is None else np.asarray(topic, dtype=float),
    )


@pytest.fixture()
def sports_vs_tech_elements():
    """Ten elements split between a 'sports' topic and a 'tech' topic."""
    sports_docs = [
        ["goal", "league", "striker"],
        ["match", "goal", "penalty"],
        ["league", "coach", "derby"],
        ["striker", "transfer", "match"],
        ["penalty", "keeper", "goal"],
    ]
    tech_docs = [
        ["cloud", "software", "kernel"],
        ["database", "query", "index"],
        ["compiler", "kernel", "software"],
        ["network", "cloud", "latency"],
        ["query", "database", "software"],
    ]
    elements = []
    for i, tokens in enumerate(sports_docs):
        elements.append(make_element(i, tokens, topic=[0.9, 0.1], timestamp=i + 1))
    for i, tokens in enumerate(tech_docs):
        elements.append(
            make_element(5 + i, tokens, topic=[0.1, 0.9], timestamp=i + 6,
                         references=(0,) if i == 0 else ())
        )
    return elements


def make_request(elements, keywords, vector, k=3):
    return SearchRequest(elements=elements, keywords=tuple(keywords), query_vector=np.asarray(vector), k=k)


class TestSearchRequest:
    def test_invalid_k(self, sports_vs_tech_elements):
        with pytest.raises(ValueError):
            make_request(sports_vs_tech_elements, ["goal"], [1.0, 0.0], k=0)

    def test_registry_contains_paper_baselines(self):
        assert set(SEARCH_REGISTRY) == {"tfidf", "div", "sumblr", "rel"}


class TestTFIDFHelpers:
    def test_document_frequencies(self, sports_vs_tech_elements):
        frequencies = build_document_frequencies(sports_vs_tech_elements)
        assert frequencies["goal"] == 3
        assert frequencies["software"] == 3

    def test_tfidf_vector_weights_rare_words_higher(self, sports_vs_tech_elements):
        frequencies = build_document_frequencies(sports_vs_tech_elements)
        vector = tfidf_vector(["goal", "keeper"], frequencies, len(sports_vs_tech_elements))
        assert vector["keeper"] > vector["goal"]

    def test_cosine_similarity_range_and_symmetry(self):
        left = {"a": 1.0, "b": 2.0}
        right = {"b": 2.0, "c": 1.0}
        value = cosine_similarity(left, right)
        assert 0.0 < value < 1.0
        assert value == pytest.approx(cosine_similarity(right, left))
        assert cosine_similarity(left, left) == pytest.approx(1.0)
        assert cosine_similarity(left, {}) == 0.0
        assert cosine_similarity(left, {"z": 1.0}) == 0.0


class TestTFIDFSearch:
    def test_returns_keyword_matching_elements(self, sports_vs_tech_elements):
        request = make_request(sports_vs_tech_elements, ["goal", "penalty"], [1.0, 0.0])
        result = TFIDFSearch().search(request)
        assert len(result) == 3
        returned_tokens = {
            token
            for element in sports_vs_tech_elements
            if element.element_id in result
            for token in element.tokens
        }
        assert "goal" in returned_tokens or "penalty" in returned_tokens

    def test_respects_k(self, sports_vs_tech_elements):
        request = make_request(sports_vs_tech_elements, ["goal"], [1.0, 0.0], k=2)
        assert len(TFIDFSearch().search(request)) == 2

    def test_rank_is_sorted_descending(self, sports_vs_tech_elements):
        request = make_request(sports_vs_tech_elements, ["goal"], [1.0, 0.0])
        ranked = TFIDFSearch().rank(request)
        scores = [score for _eid, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_no_match_returns_zero_scores(self, sports_vs_tech_elements):
        request = make_request(sports_vs_tech_elements, ["zzz"], [1.0, 0.0])
        ranked = TFIDFSearch().rank(request)
        assert all(score == 0.0 for _eid, score in ranked)


class TestTopicRelevanceSearch:
    def test_topic_cosine(self):
        assert topic_cosine(np.array([1.0, 0.0]), np.array([1.0, 0.0])) == pytest.approx(1.0)
        assert topic_cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(0.0)
        assert topic_cosine(np.zeros(2), np.array([1.0, 0.0])) == 0.0

    def test_returns_on_topic_elements(self, sports_vs_tech_elements):
        request = make_request(sports_vs_tech_elements, ["goal"], [1.0, 0.0], k=4)
        result = TopicRelevanceSearch().search(request)
        assert set(result).issubset({0, 1, 2, 3, 4})

    def test_missing_topic_distribution_scores_zero(self):
        elements = [make_element(1, ["a"]), make_element(2, ["b"], topic=[1.0, 0.0])]
        request = make_request(elements, ["a"], [1.0, 0.0], k=1)
        assert TopicRelevanceSearch().search(request) == (2,)


class TestDiversityAwareSearch:
    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            DiversityAwareSearch(relevance_weight=1.5)

    def test_respects_k_and_uniqueness(self, sports_vs_tech_elements):
        request = make_request(sports_vs_tech_elements, ["goal", "software"], [0.5, 0.5], k=4)
        result = DiversityAwareSearch().search(request)
        assert len(result) == 4
        assert len(set(result)) == 4

    def test_prefers_diverse_results(self):
        # Three near-identical relevant elements plus one different relevant one:
        # DIV should include the different one; pure relevance would not.
        elements = [
            make_element(1, ["goal", "league", "match"], topic=[1, 0]),
            make_element(2, ["goal", "league", "match"], topic=[1, 0]),
            make_element(3, ["goal", "league", "match"], topic=[1, 0]),
            make_element(4, ["goal", "derby", "keeper"], topic=[1, 0]),
        ]
        request = make_request(elements, ["goal"], [1.0, 0.0], k=2)
        result = DiversityAwareSearch(relevance_weight=0.3).search(request)
        assert 4 in result

    def test_empty_candidates(self):
        request = make_request([], ["goal"], [1.0, 0.0], k=2)
        assert DiversityAwareSearch().search(request) == ()


class TestLexRank:
    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            lexrank_scores(np.ones((2, 3)))

    def test_scores_sum_to_one(self):
        similarity = np.array([[1.0, 0.5, 0.0], [0.5, 1.0, 0.5], [0.0, 0.5, 1.0]])
        scores = lexrank_scores(similarity)
        assert scores.shape == (3,)
        assert scores.sum() == pytest.approx(1.0, abs=1e-6)

    def test_central_node_scores_highest(self):
        # Node 1 is similar to both others; nodes 0 and 2 only to node 1.
        similarity = np.array([[1.0, 0.8, 0.0], [0.8, 1.0, 0.8], [0.0, 0.8, 1.0]])
        scores = lexrank_scores(similarity)
        assert int(np.argmax(scores)) == 1

    def test_teleport_weights_bias_scores(self):
        similarity = np.array([[1.0, 0.5], [0.5, 1.0]])
        unbiased = lexrank_scores(similarity)
        biased = lexrank_scores(similarity, teleport_weights=[10.0, 1.0])
        assert biased[0] > unbiased[0]

    def test_invalid_teleport_weights(self):
        similarity = np.eye(2)
        with pytest.raises(ValueError):
            lexrank_scores(similarity, teleport_weights=[1.0])
        with pytest.raises(ValueError):
            lexrank_scores(similarity, teleport_weights=[-1.0, 1.0])

    def test_empty_matrix(self):
        assert lexrank_scores(np.zeros((0, 0))).shape == (0,)

    def test_pairwise_cosine_matrix(self):
        vectors = [{"a": 1.0}, {"a": 1.0, "b": 1.0}, {"c": 1.0}]
        matrix = pairwise_cosine_matrix(vectors)
        assert matrix.shape == (3, 3)
        assert matrix[0, 1] == pytest.approx(1 / np.sqrt(2))
        assert matrix[0, 2] == 0.0
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)


class TestKMeans:
    def test_empty_input(self):
        assert kmeans_cluster(np.zeros((0, 2)), 3).shape == (0,)

    def test_separates_obvious_clusters(self):
        points = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]])
        labels = kmeans_cluster(points, num_clusters=2)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_more_clusters_than_points(self):
        points = np.array([[0.0], [1.0]])
        labels = kmeans_cluster(points, num_clusters=5)
        assert len(set(labels.tolist())) <= 2


class TestSumblr:
    def test_respects_k(self, sports_vs_tech_elements):
        request = make_request(sports_vs_tech_elements, ["goal", "software"], [0.5, 0.5], k=4)
        result = SumblrSummarizer().search(request)
        assert len(result) == 4
        assert len(set(result)) == 4

    def test_keyword_filter_restricts_candidates(self, sports_vs_tech_elements):
        request = make_request(sports_vs_tech_elements, ["goal"], [1.0, 0.0], k=2)
        result = SumblrSummarizer().search(request)
        keyword_matching = {
            element.element_id
            for element in sports_vs_tech_elements
            if "goal" in element.tokens
        }
        assert set(result).issubset(keyword_matching)

    def test_falls_back_to_all_elements_when_no_match(self, sports_vs_tech_elements):
        request = make_request(sports_vs_tech_elements, ["zzz"], [0.5, 0.5], k=3)
        result = SumblrSummarizer().search(request)
        assert len(result) == 3

    def test_covers_both_clusters(self, sports_vs_tech_elements):
        request = make_request(
            sports_vs_tech_elements, ["goal", "software"], [0.5, 0.5], k=2
        )
        result = SumblrSummarizer().search(request)
        sides = {0 if eid < 5 else 1 for eid in result}
        assert sides == {0, 1}

    def test_empty_candidates(self):
        request = make_request([], ["goal"], [1.0, 0.0], k=2)
        assert SumblrSummarizer().search(request) == ()

    def test_popularity_extraction(self, sports_vs_tech_elements):
        popularity = SumblrSummarizer._popularity(sports_vs_tech_elements)
        assert popularity.get(0) == 1
