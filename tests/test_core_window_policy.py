"""Window policies: cutoff trackers and both window implementations.

The policy seam is one number — the ``window_start`` cutoff — so these
tests pin the cutoff arithmetic of each policy directly, then drive
:class:`~repro.core.window.ActiveWindow` and
:class:`~repro.store.window.ColumnarWindow` side by side to show the two
implementations agree under every policy, and that checkpoints carry the
policy (and the session tracker's state) across a restore.
"""

from __future__ import annotations

import pytest

from repro.core.element import SocialElement
from repro.core.window import ActiveWindow
from repro.core.window_policy import (
    CutoffTracker,
    SessionCutoff,
    TumblingCutoff,
    WindowPolicy,
)
from repro.store.window import ColumnarWindow


def make_element(element_id: int, timestamp: int, references=()) -> SocialElement:
    return SocialElement(
        element_id=element_id,
        timestamp=timestamp,
        tokens=("w",),
        references=tuple(references),
    )


class TestPolicyValue:
    def test_default_is_sliding(self):
        policy = WindowPolicy()
        assert policy.kind == "sliding"
        assert not policy.stateful
        assert isinstance(policy.tracker(10), CutoffTracker)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown window policy"):
            WindowPolicy(kind="hopping")

    def test_session_requires_gap(self):
        with pytest.raises(ValueError, match="session_gap"):
            WindowPolicy(kind="session")
        with pytest.raises(ValueError, match="session_gap"):
            WindowPolicy(kind="session", session_gap=0)

    def test_gap_exclusive_to_session(self):
        with pytest.raises(ValueError, match="only valid with the 'session'"):
            WindowPolicy(kind="tumbling", session_gap=5)

    def test_tracker_dispatch(self):
        assert isinstance(WindowPolicy("tumbling").tracker(10), TumblingCutoff)
        session = WindowPolicy("session", session_gap=3)
        assert isinstance(session.tracker(10), SessionCutoff)
        assert session.stateful

    def test_dict_roundtrip(self):
        for policy in (
            WindowPolicy(),
            WindowPolicy("tumbling"),
            WindowPolicy("session", session_gap=7),
        ):
            assert WindowPolicy.from_dict(policy.to_dict()) == policy
        assert WindowPolicy.from_dict(None) == WindowPolicy()
        with pytest.raises(ValueError, match="unknown window-policy keys"):
            WindowPolicy.from_dict({"kind": "sliding", "extra": 1})


class TestCutoffArithmetic:
    def test_sliding_cutoff_trails_by_window(self):
        tracker = CutoffTracker(4)
        assert tracker.cutoff(8) == 5  # W_8 = [5, 8], the paper's T = 4

    def test_tumbling_cutoff_is_span_start(self):
        tracker = TumblingCutoff(4)
        # Spans (0, 4], (4, 8], ...: the cutoff jumps at span boundaries.
        assert tracker.cutoff(1) == 1
        assert tracker.cutoff(4) == 1
        assert tracker.cutoff(5) == 5
        assert tracker.cutoff(8) == 5
        assert tracker.cutoff(9) == 9

    def test_session_cutoff_follows_session_start(self):
        tracker = SessionCutoff(100, session_gap=3)
        tracker.observe(10)
        tracker.observe(12)
        assert tracker.cutoff(12) == 10  # session open since 10
        tracker.observe(14)
        assert tracker.cutoff(14) == 10
        # Silence longer than the gap closes the session entirely.
        assert tracker.cutoff(18) == 19
        # The next event opens a fresh session.
        tracker.observe(30)
        assert tracker.cutoff(30) == 30

    def test_session_cutoff_is_bounded_by_window_length(self):
        tracker = SessionCutoff(5, session_gap=3)
        for timestamp in range(1, 20, 2):
            tracker.observe(timestamp)
        # One long session, but T = 5 still bounds the extent.
        assert tracker.cutoff(19) == 19 - 5 + 1

    def test_session_state_roundtrip(self):
        tracker = SessionCutoff(100, session_gap=3)
        tracker.observe(10)
        tracker.observe(12)
        restored = SessionCutoff(100, session_gap=3)
        restored.restore_state(tracker.state_dict())
        assert restored.cutoff(13) == tracker.cutoff(13)
        assert restored.cutoff(40) == tracker.cutoff(40)


@pytest.mark.parametrize("window_cls", [ActiveWindow, ColumnarWindow])
class TestWindowsUnderPolicies:
    def test_sliding_default_unchanged(self, window_cls):
        window = window_cls(4)
        assert window.policy == WindowPolicy()
        window.insert_bucket([make_element(1, 1), make_element(2, 4)])
        window.advance_to(4)
        assert set(window.window_ids()) == {1, 2}
        window.advance_to(7)
        assert set(window.window_ids()) == {2}

    def test_tumbling_window_empties_at_span_boundary(self, window_cls):
        window = window_cls(4, policy=WindowPolicy("tumbling"))
        window.insert_bucket([make_element(1, 2), make_element(2, 4)])
        window.advance_to(4)  # span (0, 4] still open
        assert set(window.window_ids()) == {1, 2}
        window.insert_bucket([make_element(3, 5)])
        window.advance_to(5)  # crossed into (4, 8]: the span emptied
        assert set(window.window_ids()) == {3}
        assert set(window.active_ids()) == {3}

    def test_session_window_expires_after_gap_silence(self, window_cls):
        window = window_cls(100, policy=WindowPolicy("session", session_gap=3))
        window.insert_bucket([make_element(1, 10), make_element(2, 12)])
        window.advance_to(12)
        assert set(window.window_ids()) == {1, 2}
        window.advance_to(14)  # silence within the gap: session stays open
        assert set(window.window_ids()) == {1, 2}
        window.advance_to(16)  # gap exceeded: the session closed
        assert window.window_ids() == ()
        window.insert_bucket([make_element(3, 20)])
        window.advance_to(20)  # a new session holds only the new element
        assert set(window.window_ids()) == {3}

    def test_both_implementations_agree_under_every_policy(self, window_cls):
        # Not parametrised over the *other* class: build both here and
        # replay the same buckets, comparing membership step by step.
        del window_cls
        elements = [
            make_element(1, 2),
            make_element(2, 4, references=(1,)),
            make_element(3, 5),
            make_element(4, 9, references=(3,)),
            make_element(5, 13),
        ]
        for policy in (
            WindowPolicy(),
            WindowPolicy("tumbling"),
            WindowPolicy("session", session_gap=4),
        ):
            core = ActiveWindow(6, policy=policy)
            columnar = ColumnarWindow(6, policy=policy)
            for element in elements:
                core.insert_bucket([element])
                columnar.insert_bucket([element])
                core.advance_to(element.timestamp)
                columnar.advance_to(element.timestamp)
                assert set(core.window_ids()) == set(columnar.window_ids()), policy
                assert set(core.active_ids()) == set(columnar.active_ids()), policy

    def test_checkpoint_roundtrip_carries_policy_state(self, window_cls):
        policy = WindowPolicy("session", session_gap=3)
        window = window_cls(100, policy=policy)
        window.insert_bucket([make_element(1, 10), make_element(2, 12)])
        window.advance_to(12)
        restored = window_cls(100, policy=policy)
        restored.restore_state(window.state_dict())
        # The restored tracker remembers the open session: advancing
        # within the gap keeps it, advancing past the gap closes it.
        restored.advance_to(14)
        assert set(restored.window_ids()) == {1, 2}
        restored.advance_to(16)
        assert restored.window_ids() == ()

    def test_checkpoint_policy_mismatch_is_rejected(self, window_cls):
        window = window_cls(4, policy=WindowPolicy("tumbling"))
        window.insert_bucket([make_element(1, 2)])
        window.advance_to(2)
        plain = window_cls(4)
        with pytest.raises(ValueError, match="window policy"):
            plain.restore_state(window.state_dict())

    def test_sliding_checkpoint_has_no_policy_keys(self, window_cls):
        window = window_cls(4)
        window.insert_bucket([make_element(1, 2)])
        window.advance_to(2)
        state = window.state_dict()
        assert "window_policy" not in state
        assert "window_tracker" not in state
