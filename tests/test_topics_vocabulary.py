"""Tests for the vocabulary and preprocessing substrate."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topics.preprocess import STOP_WORDS, Preprocessor, tokenize
from repro.topics.vocabulary import Vocabulary


class TestVocabulary:
    def test_add_assigns_sequential_ids(self):
        vocabulary = Vocabulary()
        assert vocabulary.add("alpha") == 0
        assert vocabulary.add("beta") == 1
        assert vocabulary.add("alpha") == 0
        assert len(vocabulary) == 2

    def test_constructor_from_iterable(self):
        vocabulary = Vocabulary(["a", "b", "a"])
        assert len(vocabulary) == 2
        assert vocabulary.words == ["a", "b"]

    def test_id_and_word_lookup(self):
        vocabulary = Vocabulary(["a", "b"])
        assert vocabulary.id_of("b") == 1
        assert vocabulary.word_of(0) == "a"
        assert vocabulary.get_id("missing") is None
        with pytest.raises(KeyError):
            vocabulary.id_of("missing")

    def test_add_document_updates_frequencies(self):
        vocabulary = Vocabulary()
        vocabulary.add_document(["a", "b", "a"])
        vocabulary.add_document(["a", "c"])
        assert vocabulary.documents_seen == 2
        assert vocabulary.document_frequency("a") == 2
        assert vocabulary.total_frequency("a") == 3
        assert vocabulary.document_frequency("b") == 1

    def test_from_documents(self):
        vocabulary = Vocabulary.from_documents([["x", "y"], ["y", "z"]])
        assert set(vocabulary) == {"x", "y", "z"}

    def test_encode_skips_unknown(self):
        vocabulary = Vocabulary(["a", "b"])
        assert vocabulary.encode(["a", "zzz", "b"]) == [0, 1]
        with pytest.raises(KeyError):
            vocabulary.encode(["zzz"], skip_unknown=False)

    def test_decode_roundtrip(self):
        vocabulary = Vocabulary(["a", "b", "c"])
        ids = vocabulary.encode(["c", "a"])
        assert vocabulary.decode(ids) == ["c", "a"]

    def test_pruned_by_min_document_frequency(self):
        vocabulary = Vocabulary()
        vocabulary.add_document(["common", "rare"])
        vocabulary.add_document(["common"])
        pruned = vocabulary.pruned(min_document_frequency=2)
        assert "common" in pruned
        assert "rare" not in pruned

    def test_pruned_by_max_document_ratio(self):
        vocabulary = Vocabulary()
        for _ in range(4):
            vocabulary.add_document(["stopword", "content"])
        vocabulary.add_document(["stopword"])
        pruned = vocabulary.pruned(max_document_ratio=0.9)
        # "stopword" appears in every document (ratio 1.0 > 0.9) and is dropped;
        # "content" appears in 4/5 documents and survives.
        assert "stopword" not in pruned
        assert "content" in pruned

    def test_pruned_max_size_keeps_most_frequent(self):
        vocabulary = Vocabulary()
        vocabulary.add_document(["a", "b"])
        vocabulary.add_document(["a"])
        pruned = vocabulary.pruned(max_size=1)
        assert len(pruned) == 1
        assert "a" in pruned

    def test_pruned_invalid_ratio(self):
        with pytest.raises(ValueError):
            Vocabulary().pruned(max_document_ratio=0.0)

    @given(st.lists(st.text(alphabet="abcde", min_size=1, max_size=4), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_ids_are_dense_and_unique(self, words):
        vocabulary = Vocabulary(words)
        ids = [vocabulary.id_of(word) for word in vocabulary]
        assert sorted(ids) == list(range(len(vocabulary)))


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_strips_urls(self):
        tokens = tokenize("breaking news https://example.com/x?y=1 wow")
        assert "breaking" in tokens and "wow" in tokens
        assert not any("http" in token for token in tokens)

    def test_keeps_hashtags_and_mentions_without_sigils(self):
        tokens = tokenize("@LFC wins the #UCL final")
        assert "lfc" in tokens
        assert "ucl" in tokens
        assert "#ucl" not in tokens

    def test_keeps_numbers_and_hyphens(self):
        tokens = tokenize("the 2018-19 season")
        assert "2018-19" in tokens

    def test_empty_string(self):
        assert tokenize("") == []


class TestPreprocessor:
    def test_removes_stop_words(self):
        processor = Preprocessor()
        tokens = processor.process("the quick brown fox and the lazy dog")
        assert "the" not in tokens and "and" not in tokens
        assert "quick" in tokens and "fox" in tokens

    def test_min_token_length(self):
        processor = Preprocessor(min_token_length=3)
        assert "ab" not in processor.process("ab abc")
        assert "abc" in processor.process("ab abc")

    def test_extra_noise_words(self):
        processor = Preprocessor(extra_noise_words=frozenset({"spamword"}))
        assert "spamword" not in processor.process("spamword content")

    def test_process_corpus(self):
        processor = Preprocessor()
        corpus = processor.process_corpus(["first document", "second document"])
        assert len(corpus) == 2
        assert all(isinstance(tokens, list) for tokens in corpus)

    def test_invalid_lengths_raise(self):
        with pytest.raises(ValueError):
            Preprocessor(min_token_length=0)
        with pytest.raises(ValueError):
            Preprocessor(min_token_length=5, max_token_length=4)

    def test_stop_words_are_lowercase(self):
        assert all(word == word.lower() for word in STOP_WORDS)
