"""End-to-end integration tests: generate → train → replay → query → evaluate.

These tests exercise the whole public API the way the examples and the
benchmark harness do, including the optional path that trains a topic model
from the generated corpus instead of using the ground-truth oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    KSIRProcessor,
    KSIRQuery,
    ProcessorConfig,
    ScoringConfig,
    SyntheticStreamGenerator,
    infer_query_vector,
)
from repro.evaluation.metrics import coverage_score, influence_score
from repro.evaluation.workload import WorkloadGenerator
from repro.search import SEARCH_REGISTRY
from repro.search.base import SearchRequest
from tests.conftest import build_processor


class TestEndToEndPipeline:
    def test_full_pipeline_on_tiny_profile(self, tiny_dataset, tiny_processor):
        # 1. The stream was fully replayed.
        assert tiny_processor.elements_processed == len(tiny_dataset.stream)
        assert tiny_processor.active_count > 0

        # 2. Ad-hoc queries with every algorithm return consistent results.
        query = tiny_dataset.make_query(k=6, topic=0)
        scores = {}
        for algorithm in ("celf", "sieve", "topk", "mtts", "mttd"):
            result = tiny_processor.query(query, algorithm=algorithm)
            assert len(result) <= 6
            scores[algorithm] = result.score
        assert scores["mttd"] >= 0.9 * scores["celf"]

        # 3. The effectiveness metrics run on the same snapshot.
        candidates = list(tiny_processor.window.active_elements())
        window_elements = [
            tiny_processor.window.get(eid) for eid in tiny_processor.window.window_ids()
        ]
        result = tiny_processor.query(query, algorithm="mttd")
        selected = list(tiny_processor.result_elements(result))
        coverage = coverage_score(selected, candidates, query.vector)
        influence = influence_score(result.element_ids, window_elements, k=query.k)
        assert 0.0 <= coverage <= 1.0
        assert 0.0 <= influence <= 1.0

    def test_incremental_processing_matches_batch(self, tiny_dataset):
        """Replaying bucket-by-bucket equals replaying via process_stream."""
        config = ProcessorConfig(
            window_length=3 * 3600, bucket_length=900,
            scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
        )
        batch = build_processor(tiny_dataset.topic_model, config)
        batch.process_stream(tiny_dataset.stream)

        incremental = build_processor(tiny_dataset.topic_model, config)
        for bucket in tiny_dataset.stream.buckets(config.bucket_length):
            incremental.process_bucket(bucket.elements, bucket.end_time)

        assert set(batch.window.active_ids()) == set(incremental.window.active_ids())
        query = tiny_dataset.make_query(k=5, topic=1)
        assert batch.query(query, algorithm="celf").score == pytest.approx(
            incremental.query(query, algorithm="celf").score
        )

    def test_query_by_keyword_pipeline(self, tiny_dataset, tiny_processor):
        """The paper's query-by-keyword transformation end to end."""
        keywords = tiny_dataset.topical_keywords(2, count=3)
        vector = infer_query_vector(tiny_dataset.topic_model, keywords)
        query = KSIRQuery(k=5, vector=vector, keywords=tuple(keywords))
        result = tiny_processor.query(query, algorithm="mttd")
        assert len(result) >= 1
        # The selected elements should lean towards the queried topic.
        selected = tiny_processor.result_elements(result)
        dominant = [int(np.argmax(e.topic_distribution)) for e in selected]
        assert any(topic == 2 for topic in dominant)

    def test_search_baselines_run_on_processor_snapshot(self, tiny_dataset, tiny_processor):
        query = tiny_dataset.make_query(k=4, topic=0)
        request = SearchRequest(
            elements=list(tiny_processor.window.active_elements()),
            keywords=query.keywords,
            query_vector=query.vector,
            k=query.k,
        )
        for name, cls in SEARCH_REGISTRY.items():
            result = cls().search(request)
            assert len(result) <= 4, name

    def test_workload_replay_with_interleaved_queries(self, tiny_dataset):
        """Queries issued at their workload timestamps during the replay."""
        config = ProcessorConfig(
            window_length=3 * 3600, bucket_length=1800,
            scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
        )
        processor = build_processor(tiny_dataset.topic_model, config)
        workload = WorkloadGenerator(tiny_dataset, k=5, seed=3).generate(6)
        pending = list(workload)
        answered = []
        for bucket in tiny_dataset.stream.buckets(config.bucket_length):
            processor.process_bucket(bucket.elements, bucket.end_time)
            while pending and pending[0].time <= bucket.end_time:
                query = pending.pop(0)
                if processor.active_count == 0:
                    continue
                answered.append(processor.query(query, algorithm="mttd"))
        assert len(answered) >= 1
        assert all(result.elapsed_ms >= 0.0 for result in answered)

    def test_trained_lda_model_can_replace_oracle(self, tiny_dataset):
        """Train LDA on the corpus and run the processor with it (no ground truth)."""
        model = tiny_dataset.train_topic_model(kind="lda", num_topics=5, iterations=15, seed=2)
        config = ProcessorConfig(
            window_length=3 * 3600, bucket_length=1800,
            scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
        )
        processor = build_processor(model, config)
        # Strip the ground-truth distributions so the processor infers them.
        stripped = [
            type(element)(
                element_id=element.element_id,
                timestamp=element.timestamp,
                tokens=element.tokens,
                references=element.references,
            )
            for element in tiny_dataset.stream.elements[:150]
        ]
        from repro.core.stream import SocialStream

        processor.process_stream(SocialStream(stripped))
        assert processor.active_count > 0
        keywords = tiny_dataset.topical_keywords(0, count=3)
        vector = infer_query_vector(model, keywords)
        result = processor.query(KSIRQuery(k=5, vector=vector))
        assert len(result) <= 5

    def test_reproducibility_of_full_run(self):
        """Same seed → same dataset → same query answers."""
        def run():
            dataset = SyntheticStreamGenerator.from_profile("tiny", seed=99).generate()
            config = ProcessorConfig(
                window_length=3 * 3600, bucket_length=900,
                scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
            )
            processor = build_processor(dataset.topic_model, config)
            processor.process_stream(dataset.stream)
            query = dataset.make_query(k=5, topic=1)
            return processor.query(query, algorithm="mttd")

        first = run()
        second = run()
        assert first.element_ids == second.element_ids
        assert first.score == pytest.approx(second.score)
