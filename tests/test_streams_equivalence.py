"""Event-time ingest equivalence: disordered arrivals answer like in-order.

The contract of the ingestion subsystem is transparency: feeding an
arrival sequence with bounded disorder (every element delayed at most
``allowed_lateness`` buckets) through ``KSIREngine.ingest`` must drop
nothing and answer every query within 1e-9 of the classic in-order
``process_stream`` replay — on the single-node, sharded and service
backends alike.  A Hypothesis property pins that over random instances;
deterministic tests cover the engine-facade ingest API itself.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import build_reference_stream
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import EngineConfig, KSIREngine
from repro.cluster import ClusterConfig
from repro.core.processor import ProcessorConfig
from repro.core.query import KSIRQuery
from repro.core.scoring import ScoringConfig
from repro.core.stream import SocialStream
from repro.streams import MemorySource, StreamConfig, inject_disorder

BUCKET_LENGTH = 2


def random_query(seed: int, num_topics: int, k: int) -> KSIRQuery:
    rng = np.random.default_rng(seed + 104729)
    active = int(rng.integers(1, min(3, num_topics) + 1))
    topics = rng.choice(num_topics, size=active, replace=False)
    vector = np.zeros(num_topics)
    vector[topics] = rng.dirichlet(np.ones(active))
    return KSIRQuery(k=k, vector=vector)


def engine_configs(n: int, allowed_lateness: int):
    """One config per execution backend, sharing the processor section."""
    processor = ProcessorConfig(
        window_length=max(4, n // 2),
        bucket_length=BUCKET_LENGTH,
        scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
    )
    streams = StreamConfig(allowed_lateness=allowed_lateness)
    yield EngineConfig(backend="local", processor=processor, streams=streams)
    yield EngineConfig(
        backend="cluster",
        processor=processor,
        cluster=ClusterConfig(num_shards=2, backend="serial"),
        streams=streams,
    )
    yield EngineConfig(backend="service", processor=processor, streams=streams)


instance_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=8, max_value=16),      # elements
    st.integers(min_value=2, max_value=4),       # topics
    st.integers(min_value=6, max_value=12),      # vocabulary
    st.integers(min_value=2, max_value=3),       # k
    st.integers(min_value=1, max_value=3),       # disorder bound (buckets)
)


class TestBoundedDisorderEquivalence:
    @given(params=instance_params)
    @settings(max_examples=10, deadline=None)
    def test_disordered_ingest_matches_in_order_on_every_backend(self, params):
        seed, n, z, v, k, max_delay = params
        model, elements = build_reference_stream(seed, n, z, v)
        arrivals = inject_disorder(
            elements,
            bucket_length=BUCKET_LENGTH,
            max_delay_buckets=max_delay,
            fraction=1.0,
            seed=seed,
        )
        query = random_query(seed, z, k)
        for config in engine_configs(n, allowed_lateness=max_delay):
            ordered = KSIREngine(model, config)
            ordered.process_stream(SocialStream(elements))
            disordered = KSIREngine(model, config)
            disordered.ingest(arrivals)
            disordered.ingest_flush()

            metrics = disordered.stream_metrics()
            assert metrics.dropped_late == 0, config.backend
            assert metrics.pending_events == 0, config.backend
            assert disordered.buckets_processed == ordered.buckets_processed
            assert disordered.current_time == ordered.current_time
            a = disordered.query(query, algorithm="mttd", epsilon=0.1)
            b = ordered.query(query, algorithm="mttd", epsilon=0.1)
            assert a.element_ids == b.element_ids, config.backend
            assert abs(a.score - b.score) <= 1e-9, config.backend
            ordered.close()
            disordered.close()


class TestEngineIngestApi:
    def setup_method(self):
        self.model, self.elements = build_reference_stream(31, 40, 3, 10)

    def make_engine(self, **stream_kwargs) -> KSIREngine:
        return KSIREngine(
            self.model,
            EngineConfig(
                processor=ProcessorConfig(
                    window_length=20,
                    bucket_length=BUCKET_LENGTH,
                    scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
                ),
                streams=StreamConfig(**stream_kwargs),
            ),
        )

    def test_ingest_counts_sealed_buckets(self):
        engine = self.make_engine(allowed_lateness=0)
        sealed = engine.ingest(self.elements)
        sealed += engine.ingest_flush()
        assert sealed == engine.buckets_processed > 0
        engine.close()

    def test_ingest_source_named_with_options(self):
        engine = self.make_engine(allowed_lateness=2)
        metrics = engine.ingest_source(
            "memory",
            elements=self.elements,
            bucket_length=BUCKET_LENGTH,
            disorder=1.0,
            max_delay_buckets=2,
            seed=5,
        )
        assert metrics.events_total == len(self.elements)
        assert metrics.dropped_late == 0
        assert metrics.pending_events == 0
        assert engine.elements_processed == len(self.elements)
        engine.close()

    def test_ingest_source_accepts_instances_but_not_their_options(self):
        engine = self.make_engine()
        source = MemorySource(self.elements)
        metrics = engine.ingest_source(source)
        assert metrics.events_total == len(self.elements)
        with pytest.raises(ValueError, match="source options"):
            engine.ingest_source(MemorySource(self.elements), seed=1)
        engine.close()

    def test_ingest_source_defaults_to_configured_source(self):
        engine = self.make_engine(source="memory")
        metrics = engine.ingest_source(elements=self.elements[:5])
        assert metrics.events_total == 5
        engine.close()

    def test_stream_metrics_before_any_ingest_is_zeroed(self):
        engine = self.make_engine()
        metrics = engine.stream_metrics()
        assert metrics.events_total == 0
        assert metrics.buckets_sealed == 0
        assert metrics.watermark is None
        engine.close()

    def test_ingest_without_streams_config_uses_defaults(self):
        engine = KSIREngine(
            self.model,
            EngineConfig(
                processor=ProcessorConfig(
                    window_length=20,
                    bucket_length=BUCKET_LENGTH,
                    scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
                )
            ),
        )
        ordered = sorted(
            self.elements, key=lambda e: (e.timestamp, e.element_id)
        )
        engine.ingest(ordered)
        engine.ingest_flush()
        assert engine.stream_metrics().allowed_lateness == 0
        assert engine.elements_processed == len(self.elements)
        engine.close()

    def test_ingest_after_close_is_an_error(self):
        engine = self.make_engine()
        engine.close()
        with pytest.raises(RuntimeError):
            engine.ingest(self.elements)
