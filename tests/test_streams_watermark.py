"""The watermark tracker and the bounded reordering buffer.

These tests drive :class:`repro.streams.StreamIngestor` with a recording
sink, so every assertion is about the exact committed-bucket sequence —
grid, membership, in-bucket order — that an execution backend would see.
The reference behaviour throughout is
:meth:`repro.core.stream.SocialStream.buckets` over the same elements.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import pytest

from repro.core.element import SocialElement
from repro.core.stream import SocialStream
from repro.streams import StreamIngestor, WatermarkTracker


def make_element(element_id: int, timestamp: int) -> SocialElement:
    return SocialElement(
        element_id=element_id,
        timestamp=timestamp,
        tokens=("w",),
        references=(),
    )


class RecordingSink:
    """Collects ``(end_time, element_ids)`` for every sealed bucket."""

    def __init__(self) -> None:
        self.buckets: List[Tuple[int, Tuple[int, ...]]] = []

    def __call__(self, elements: Sequence[SocialElement], end_time: int) -> None:
        self.buckets.append(
            (end_time, tuple(element.element_id for element in elements))
        )


def reference_buckets(
    elements: Sequence[SocialElement], bucket_length: int
) -> List[Tuple[int, Tuple[int, ...]]]:
    """What the in-order replay would commit for the same elements."""
    stream = SocialStream(elements)
    return [
        (bucket.end_time, tuple(element.element_id for element in bucket))
        for bucket in stream.buckets(bucket_length)
    ]


class TestWatermarkTracker:
    def test_empty_tracker_has_no_watermark(self):
        tracker = WatermarkTracker(lateness_horizon=5)
        assert tracker.watermark is None
        assert tracker.max_event_time is None
        assert tracker.min_event_time is None
        assert tracker.late_events == 0

    def test_watermark_trails_high_water_mark_by_horizon(self):
        tracker = WatermarkTracker(lateness_horizon=3)
        tracker.observe(10)
        assert tracker.watermark == 7
        tracker.observe(20)
        assert tracker.watermark == 17
        assert tracker.max_event_time == 20
        assert tracker.min_event_time == 10

    def test_late_elements_are_counted_not_advancing(self):
        tracker = WatermarkTracker(lateness_horizon=0)
        assert tracker.observe(10) is False
        assert tracker.observe(5) is True
        assert tracker.observe(10) is False  # a tie is not late
        assert tracker.late_events == 1
        assert tracker.watermark == 10
        assert tracker.min_event_time == 5

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError, match="lateness_horizon"):
            WatermarkTracker(lateness_horizon=-1)


class TestStreamIngestor:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="bucket_length"):
            StreamIngestor(lambda e, t: None, bucket_length=0)
        with pytest.raises(ValueError, match="allowed_lateness"):
            StreamIngestor(lambda e, t: None, bucket_length=5, allowed_lateness=-1)

    def test_in_order_input_matches_in_order_replay(self):
        elements = [make_element(i, 1 + 2 * i) for i in range(10)]
        sink = RecordingSink()
        ingestor = StreamIngestor(sink, bucket_length=5, allowed_lateness=0)
        ingestor.push_many(elements)
        ingestor.flush()
        assert sink.buckets == reference_buckets(elements, 5)
        metrics = ingestor.metrics()
        assert metrics.dropped_late == 0
        assert metrics.late_events == 0
        assert metrics.pending_events == 0

    def test_empty_buckets_are_committed_through_silence(self):
        # Elements at t=1 and t=42 with L=10: the in-order replay emits
        # the silent buckets in between, and so must the ingestor.
        elements = [make_element(0, 1), make_element(1, 42)]
        sink = RecordingSink()
        ingestor = StreamIngestor(sink, bucket_length=10, allowed_lateness=0)
        ingestor.push_many(elements)
        ingestor.flush()
        assert sink.buckets == reference_buckets(elements, 10)
        assert [end for end, _ in sink.buckets] == [10, 20, 30, 40, 50]

    def test_late_element_is_resorted_into_true_bucket(self):
        sink = RecordingSink()
        ingestor = StreamIngestor(sink, bucket_length=10, allowed_lateness=1)
        # Grid anchors at min_ts + L - 1 = 12.
        ingestor.push(make_element(0, 3))
        ingestor.push(make_element(1, 14))  # watermark = 4: nothing seals yet
        assert sink.buckets == []
        ingestor.push(make_element(2, 7))  # late, lands back in bucket 12
        ingestor.push(make_element(3, 25))  # watermark = 15 > 12: bucket 12 seals
        assert sink.buckets == [(12, (0, 2))]
        ingestor.flush()
        assert sink.buckets == [(12, (0, 2)), (22, (1,)), (32, (3,))]
        assert ingestor.metrics().dropped_late == 0

    def test_in_bucket_order_is_timestamp_then_id(self):
        sink = RecordingSink()
        ingestor = StreamIngestor(sink, bucket_length=10, allowed_lateness=1)
        # Arrivals scrambled inside one bucket, including a timestamp tie.
        for element in [
            make_element(5, 8),
            make_element(1, 3),
            make_element(2, 8),
            make_element(4, 1),
        ]:
            ingestor.push(element)
        ingestor.flush()
        assert sink.buckets == [(10, (4, 1, 2, 5))]

    def test_too_late_element_is_dropped_and_counted(self):
        sink = RecordingSink()
        ingestor = StreamIngestor(sink, bucket_length=10, allowed_lateness=0)
        ingestor.push(make_element(0, 5))
        ingestor.push(make_element(1, 21))  # seals bucket 14 (min_ts + L - 1)
        assert sink.buckets == [(14, (0,))]
        sealed = ingestor.push(make_element(2, 9))  # bucket 14 already gone
        assert sealed == 0
        ingestor.flush()
        metrics = ingestor.metrics()
        assert metrics.dropped_late == 1
        # The drop never misfiles: element 2 appears in no bucket.
        committed = [eid for _, ids in sink.buckets for eid in ids]
        assert committed == [0, 1]

    def test_deferred_anchoring_uses_true_minimum(self):
        # The first *arrival* is not the first *event*: the grid must
        # anchor on the delayed true-first element, exactly like the
        # in-order replay of the completed stream.
        elements = [make_element(0, 12), make_element(1, 4), make_element(2, 30)]
        sink = RecordingSink()
        ingestor = StreamIngestor(sink, bucket_length=10, allowed_lateness=1)
        ingestor.push_many(elements)
        ingestor.flush()
        assert sink.buckets == reference_buckets(elements, 10)
        assert sink.buckets[0][0] == 13  # anchored at min_ts + L - 1

    def test_explicit_start_time_anchors_the_grid(self):
        sink = RecordingSink()
        ingestor = StreamIngestor(
            sink, bucket_length=10, allowed_lateness=0, start_time=1
        )
        ingestor.push(make_element(0, 5))
        ingestor.flush()
        assert sink.buckets == [(10, (0,))]

    def test_flush_on_empty_ingestor_is_a_noop(self):
        sink = RecordingSink()
        ingestor = StreamIngestor(sink, bucket_length=10)
        assert ingestor.flush() == 0
        assert sink.buckets == []
        assert ingestor.metrics().buckets_sealed == 0

    def test_flush_is_idempotent(self):
        sink = RecordingSink()
        ingestor = StreamIngestor(sink, bucket_length=10, allowed_lateness=2)
        ingestor.push(make_element(0, 5))
        assert ingestor.flush() == 1
        assert ingestor.flush() == 0
        assert sink.buckets == [(14, (0,))]

    def test_push_reports_sealed_bucket_count(self):
        sink = RecordingSink()
        ingestor = StreamIngestor(sink, bucket_length=10, allowed_lateness=0)
        assert ingestor.push(make_element(0, 5)) == 0
        # t=35 advances the watermark past buckets 10, 20 and 30.
        assert ingestor.push(make_element(1, 35)) == 3

    def test_metrics_snapshot_accounting(self):
        sink = RecordingSink()
        ingestor = StreamIngestor(sink, bucket_length=10, allowed_lateness=1)
        ingestor.push_many(
            [make_element(0, 5), make_element(1, 25), make_element(2, 18)]
        )
        metrics = ingestor.metrics()
        assert metrics.events_total == 3
        assert metrics.late_events == 1
        assert metrics.allowed_lateness == 1
        assert metrics.max_event_time == 25
        assert metrics.watermark == 15
        assert metrics.buckets_sealed == 1
        assert metrics.pending_events == 2
        payload = metrics.to_dict()
        assert payload["events_total"] == 3
        assert payload["watermark"] == 15
        assert "watermark_lag_p50" in payload
        assert "watermark_lag_p95" in payload

    def test_metrics_omit_none_extremes_before_any_element(self):
        ingestor = StreamIngestor(RecordingSink(), bucket_length=10)
        payload = ingestor.metrics().to_dict()
        assert "watermark" not in payload
        assert "max_event_time" not in payload

    def test_lag_percentiles_are_nonnegative_and_ordered(self):
        sink = RecordingSink()
        ingestor = StreamIngestor(sink, bucket_length=5, allowed_lateness=2)
        ingestor.push_many([make_element(i, 1 + 3 * i) for i in range(20)])
        ingestor.flush()
        metrics = ingestor.metrics()
        assert metrics.watermark_lag_p50 >= 0.0
        assert metrics.watermark_lag_p95 >= metrics.watermark_lag_p50
