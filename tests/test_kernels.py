"""Unit and property tests for the kernel registry and built-in kernels.

Covers the registry contract (register/lookup/replace-in-place), the
``segment_sums`` helper's empty-segment edge cases, backend selection
(``configure_kernels``/``use_kernels``), the per-kernel timing counters,
and — when the ``[kernels]`` extra is installed — per-kernel equivalence
of the Numba-compiled implementations against the NumPy references.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    KERNEL_CHOICES,
    active_kernel_backend,
    configure_kernels,
    format_kernel_stats,
    get_kernel,
    kernel_mode,
    kernel_names,
    kernel_stats,
    numba_available,
    numpy_impl,
    register_kernel,
    reset_kernel_stats,
    segment_sums,
    use_kernels,
)
from repro.kernels.registry import _REGISTRY

BUILTIN_KERNELS = (
    "delta_topic_sums",
    "positive_counts",
    "ranked_merge",
    "window_scan",
)


@pytest.fixture(autouse=True)
def restore_kernel_mode():
    """Kernel selection is process-wide; leave it as we found it."""
    previous = kernel_mode()
    yield
    configure_kernels(previous)


def naive_segment_sums(data: np.ndarray, counts: np.ndarray) -> np.ndarray:
    out = np.zeros((len(counts),) + data.shape[1:], dtype=data.dtype)
    start = 0
    for j, count in enumerate(counts):
        out[j] = data[start : start + int(count)].sum(axis=0)
        start += int(count)
    return out


class TestRegistry:
    def test_builtin_kernels_registered(self):
        assert set(kernel_names()) >= set(BUILTIN_KERNELS)

    def test_get_kernel_normalises_name(self):
        assert get_kernel(" Ranked_Merge ") is get_kernel("ranked_merge")

    def test_unknown_kernel_lists_registered(self):
        with pytest.raises(KeyError, match="ranked_merge"):
            get_kernel("nope")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_kernel("  ", lambda: None)

    def test_reregistration_swaps_impl_in_place(self):
        """Cached handles must observe re-registration (stable identity)."""
        handle = register_kernel("swap-test", lambda x: x + 1)
        try:
            assert handle(1) == 2
            assert register_kernel("swap-test", lambda x: x + 10) is handle
            assert handle(1) == 11
        finally:
            _REGISTRY.pop("swap-test", None)

    def test_attach_numba_to_unknown_kernel_raises(self):
        from repro.kernels.registry import attach_numba

        with pytest.raises(KeyError):
            attach_numba("nope", lambda: None)


class TestSegmentSums:
    def test_empty_counts(self):
        out = segment_sums(np.empty((0, 3)), np.empty(0, dtype=np.intp))
        assert out.shape == (0, 3)

    def test_all_empty_segments(self):
        counts = np.zeros(4, dtype=np.intp)
        out = segment_sums(np.empty((0, 2)), counts)
        assert out.shape == (4, 2)
        assert not out.any()

    def test_single_row_single_segment(self):
        data = np.array([[1.5, -2.0]])
        out = segment_sums(data, np.array([1], dtype=np.intp))
        np.testing.assert_array_equal(out, data)

    def test_interior_empty_segments_are_zero(self):
        """The raw-reduceat failure mode: empty segments must not leak."""
        data = np.array([[1.0], [2.0], [4.0]])
        counts = np.array([0, 2, 0, 1, 0], dtype=np.intp)
        out = segment_sums(data, counts)
        np.testing.assert_array_equal(out[:, 0], [0.0, 3.0, 0.0, 4.0, 0.0])

    def test_one_dimensional_data(self):
        data = np.array([1, 2, 3, 4], dtype=np.intp)
        counts = np.array([3, 0, 1], dtype=np.intp)
        out = segment_sums(data, counts)
        assert out.dtype == np.intp
        np.testing.assert_array_equal(out, [6, 0, 4])

    def test_dtype_preserved(self):
        data = np.ones((2, 2), dtype=np.float32)
        out = segment_sums(data, np.array([2], dtype=np.intp))
        assert out.dtype == np.float32

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=5), max_size=12),
        width=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_loop(self, counts, width, seed):
        counts = np.asarray(counts, dtype=np.intp)
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(int(counts.sum()), width))
        np.testing.assert_allclose(
            segment_sums(data, counts), naive_segment_sums(data, counts), atol=0
        )


class TestBackendSelection:
    def test_choices(self):
        assert KERNEL_CHOICES == ("auto", "numba", "numpy")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel mode"):
            configure_kernels("fortran")

    def test_numpy_mode_forces_reference(self):
        assert configure_kernels("numpy") == "numpy"
        assert active_kernel_backend() == "numpy"
        assert get_kernel("ranked_merge").backend == "numpy"

    def test_auto_mode_resolves(self):
        resolved = configure_kernels("auto")
        assert resolved == ("numba" if numba_available() else "numpy")

    @pytest.mark.skipif(numba_available(), reason="numba installed")
    def test_numba_mode_requires_numba(self):
        with pytest.raises(ValueError, match="repro-ksir\\[kernels\\]"):
            configure_kernels("numba")

    @pytest.mark.skipif(not numba_available(), reason="numba not installed")
    def test_numba_mode_activates_compiled(self):
        assert configure_kernels("numba") == "numba"
        assert get_kernel("ranked_merge").backend == "numba"

    def test_use_kernels_restores_mode(self):
        configure_kernels("auto")
        with use_kernels("numpy") as resolved:
            assert resolved == "numpy"
            assert kernel_mode() == "numpy"
        assert kernel_mode() == "auto"

    def test_use_kernels_restores_on_error(self):
        configure_kernels("auto")
        with pytest.raises(RuntimeError):
            with use_kernels("numpy"):
                raise RuntimeError("boom")
        assert kernel_mode() == "auto"

    def test_engine_config_applies_mode(self):
        """create_backend() is the chokepoint that applies KernelConfig."""
        from repro.api import EngineConfig, KernelConfig, KSIREngine
        from tests.conftest import build_reference_stream

        model, _ = build_reference_stream(0, 4, 2, 6)
        engine = KSIREngine(model, EngineConfig(kernels=KernelConfig(mode="numpy")))
        assert kernel_mode() == "numpy"
        assert engine.stats()["kernels"]["backend"] == "numpy"


class TestProfiling:
    def test_counters_accumulate_and_reset(self):
        handle = get_kernel("ranked_merge")
        reset_kernel_stats()
        assert handle.calls == 0 and handle.total_ns == 0
        handle(np.array([2.0, 1.0]), np.array([1, 0], dtype=np.int64))
        handle(np.array([1.0, 1.0]), np.array([1, 0], dtype=np.int64))
        assert handle.calls == 2
        assert handle.total_ns > 0
        reset_kernel_stats()
        assert handle.calls == 0 and handle.total_ns == 0

    def test_counters_accumulate_on_impl_error(self):
        handle = register_kernel("raises-test", lambda: 1 / 0)
        try:
            with pytest.raises(ZeroDivisionError):
                handle()
            assert handle.calls == 1
        finally:
            _REGISTRY.pop("raises-test", None)

    def test_kernel_stats_shape(self):
        stats = kernel_stats()
        assert stats["backend"] in ("numba", "numpy")
        for name in BUILTIN_KERNELS:
            counters = stats["per_kernel"][name]
            assert set(counters) == {"calls", "total_ns"}

    def test_format_kernel_stats_table(self):
        reset_kernel_stats()
        get_kernel("ranked_merge")(
            np.array([2.0, 1.0]), np.array([0, 1], dtype=np.int64)
        )
        table = format_kernel_stats()
        assert table.startswith("kernel backend:")
        assert "ranked_merge" in table
        for name in BUILTIN_KERNELS:
            assert name in table


ranked_entries = st.lists(
    st.tuples(
        # Few distinct scores → ties are the common case, and ±0.0 is in
        # the pool so signed-zero tie handling is exercised.
        st.sampled_from([-2.0, -0.0, 0.0, 0.5, 1.0, 2.0]),
        st.integers(min_value=-50, max_value=50),
    ),
    max_size=60,
)


class TestNumpyReferenceImpls:
    @given(entries=ranked_entries)
    @settings(max_examples=80, deadline=None)
    def test_ranked_merge_matches_tuple_sort(self, entries):
        """lexsort == the Python (-score, key) tuple order, ties included."""
        scores = np.array([score for score, _ in entries], dtype=np.float64)
        keys = np.array([key for _, key in entries], dtype=np.int64)
        order = numpy_impl.ranked_merge(scores, keys)
        merged = [(scores[i], keys[i]) for i in order.tolist()]
        expected = sorted(
            ((score, key) for score, key in entries),
            key=lambda item: (-item[0], item[1]),
        )
        assert merged == expected

    def test_window_scan_masks(self):
        element_ids = np.array([0, -1, 2, 3], dtype=np.int64)
        in_window = np.array([True, False, True, False])
        timestamps = np.array([5, 0, 20, 7], dtype=np.int64)
        last_activity = np.array([5, 0, 20, 9], dtype=np.int64)
        expired, inactive = numpy_impl.window_scan(
            element_ids, in_window, timestamps, last_activity, 10
        )
        # Row 0 is in-window and stale → expired; rows 0 and 3 are live
        # rows whose last activity predates the window → recyclable.
        np.testing.assert_array_equal(expired, [0])
        np.testing.assert_array_equal(inactive, [0, 3])

    def test_window_scan_empty(self):
        empty_ids = np.empty(0, dtype=np.int64)
        expired, inactive = numpy_impl.window_scan(
            empty_ids,
            np.empty(0, dtype=bool),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            10,
        )
        assert expired.size == 0 and inactive.size == 0

    def test_positive_counts(self):
        weights = np.array([0.5, 0.0, -1.0, 2.0, 3.0])
        counts = np.array([3, 0, 2], dtype=np.intp)
        np.testing.assert_array_equal(
            numpy_impl.positive_counts(weights, counts), [1, 0, 2]
        )

    def test_delta_topic_sums_gather_and_reduce(self):
        profile_matrix = np.arange(12.0).reshape(4, 3)
        indices = np.array([3, 1, 2], dtype=np.intp)
        counts = np.array([2, 0, 1], dtype=np.intp)
        out = numpy_impl.delta_topic_sums(profile_matrix, indices, counts)
        np.testing.assert_array_equal(out[0], profile_matrix[3] + profile_matrix[1])
        np.testing.assert_array_equal(out[1], 0.0)
        np.testing.assert_array_equal(out[2], profile_matrix[2])


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestCompiledEquivalence:
    """Per-kernel: the @njit variant must match the NumPy reference."""

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=4), max_size=10),
        topics=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_delta_topic_sums(self, counts, topics, seed):
        from repro.kernels import numba_impl

        counts = np.asarray(counts, dtype=np.intp)
        rng = np.random.default_rng(seed)
        rows = max(int(counts.sum()), 1)
        matrix = rng.random((rows + 2, topics))
        indices = rng.integers(0, rows + 2, size=int(counts.sum())).astype(np.intp)
        np.testing.assert_allclose(
            numba_impl._delta_topic_sums(matrix, indices, counts),
            numpy_impl.delta_topic_sums(matrix, indices, counts),
            atol=1e-12,
        )

    @given(entries=ranked_entries)
    @settings(max_examples=30, deadline=None)
    def test_ranked_merge(self, entries):
        from repro.kernels import numba_impl

        scores = np.array([score for score, _ in entries], dtype=np.float64)
        keys = np.array([key for _, key in entries], dtype=np.int64)
        np.testing.assert_array_equal(
            numba_impl._ranked_merge(scores, keys),
            numpy_impl.ranked_merge(scores, keys),
        )

    @given(
        rows=st.integers(min_value=0, max_value=30),
        window_start=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_window_scan(self, rows, window_start, seed):
        from repro.kernels import numba_impl

        rng = np.random.default_rng(seed)
        element_ids = rng.integers(-1, 10, size=rows).astype(np.int64)
        in_window = rng.random(rows) < 0.5
        timestamps = rng.integers(0, 40, size=rows).astype(np.int64)
        last_activity = rng.integers(0, 40, size=rows).astype(np.int64)
        got = numba_impl._window_scan(
            element_ids, in_window, timestamps, last_activity, window_start
        )
        want = numpy_impl.window_scan(
            element_ids, in_window, timestamps, last_activity, window_start
        )
        np.testing.assert_array_equal(got[0], want[0])
        np.testing.assert_array_equal(got[1], want[1])

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=4), max_size=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_positive_counts(self, counts, seed):
        from repro.kernels import numba_impl

        counts = np.asarray(counts, dtype=np.intp)
        rng = np.random.default_rng(seed)
        weights = rng.normal(size=int(counts.sum()))
        weights[rng.random(weights.shape) < 0.3] = 0.0
        np.testing.assert_array_equal(
            numba_impl._positive_counts(weights, counts),
            numpy_impl.positive_counts(weights, counts),
        )
