"""Unit tests of the bucket write-ahead log (repro.ha.wal)."""

from __future__ import annotations

import numpy as np

from repro.core.element import SocialElement
from repro.ha import BucketWAL


def element(element_id: int, timestamp: int) -> SocialElement:
    return SocialElement(
        element_id=element_id,
        timestamp=timestamp,
        tokens=("w",),
        references=(),
        topic_distribution=np.array([1.0, 0.0]),
    )


def bucket(start: int, size: int = 2):
    return [element(start + i, start + i) for i in range(size)]


class TestBucketWAL:
    def test_append_assigns_increasing_seqs(self):
        wal = BucketWAL()
        assert wal.last_seq == -1
        assert wal.append(bucket(0), end_time=2) == 0
        assert wal.append(bucket(2), end_time=4) == 1
        assert wal.last_seq == 1
        assert len(wal) == 2

    def test_entries_since_and_through(self):
        wal = BucketWAL()
        for start in range(0, 8, 2):
            wal.append(bucket(start), end_time=start + 2)
        assert [entry.seq for entry in wal.entries_since(1)] == [2, 3]
        assert [entry.seq for entry in wal.entries_through(1)] == [0, 1]
        assert [entry.seq for entry in wal.entries_since(-1)] == [0, 1, 2, 3]

    def test_entries_preserve_bucket_contents(self):
        wal = BucketWAL()
        members = bucket(10, size=3)
        wal.append(members, end_time=13)
        (entry,) = wal.entries_since(-1)
        assert entry.end_time == 13
        assert [e.element_id for e in entry.elements] == [10, 11, 12]

    def test_truncate_keeps_sequence_counting(self):
        wal = BucketWAL()
        wal.append(bucket(0), end_time=2)
        wal.append(bucket(2), end_time=4)
        assert wal.truncate() == 2
        assert len(wal) == 0
        # The gap arithmetic (entries_since(checkpoint_seq)) relies on seq
        # numbers continuing across truncations.
        assert wal.append(bucket(4), end_time=6) == 2
        assert wal.last_seq == 2
        assert [entry.seq for entry in wal.entries_since(1)] == [2]

    def test_stats(self):
        wal = BucketWAL()
        wal.append(bucket(0, size=3), end_time=3)
        wal.append(bucket(3, size=1), end_time=4)
        assert wal.stats() == {"entries": 2, "elements": 4, "last_seq": 1}

    def test_file_backed_log_survives_reopen(self, tmp_path):
        path = tmp_path / "bucket.wal"
        first = BucketWAL(path)
        first.append(bucket(0), end_time=2)
        first.append(bucket(2), end_time=4)
        first.close()

        reopened = BucketWAL(path)
        assert len(reopened) == 2
        assert reopened.last_seq == 1
        assert [e.element_id for e in reopened.entries_since(0)[0].elements] == [2, 3]
        # Appends continue the persisted numbering.
        assert reopened.append(bucket(4), end_time=6) == 2
        reopened.close()

    def test_file_backed_log_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "bucket.wal"
        wal = BucketWAL(path)
        wal.append(bucket(0), end_time=2)
        wal.append(bucket(2), end_time=4)
        wal.close()
        # Chop the file mid-record: the intact prefix must still load.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 7])
        reopened = BucketWAL(path)
        assert len(reopened) == 1
        assert reopened.entries_since(-1)[0].seq == 0
        reopened.close()

    def test_truncate_clears_file(self, tmp_path):
        path = tmp_path / "bucket.wal"
        wal = BucketWAL(path)
        wal.append(bucket(0), end_time=2)
        wal.truncate()
        wal.close()
        reopened = BucketWAL(path)
        assert len(reopened) == 0
        reopened.close()
