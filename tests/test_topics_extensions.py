"""Tests for topic-model persistence, query paradigms and incremental updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topics.incremental import DriftReport, IncrementalTopicModelManager
from repro.topics.inference import (
    TopicInferencer,
    infer_document_query_vector,
    infer_personalized_vector,
    infer_query_vector,
)
from repro.topics.model import MatrixTopicModel
from repro.topics.vocabulary import Vocabulary


class TestModelPersistence:
    def test_save_and_load_roundtrip(self, paper_topic_model, tmp_path):
        path = paper_topic_model.save(tmp_path / "model.npz")
        assert path.exists()
        loaded = MatrixTopicModel.load(path)
        assert loaded.num_topics == paper_topic_model.num_topics
        assert loaded.vocabulary.words == paper_topic_model.vocabulary.words
        np.testing.assert_allclose(
            loaded.topic_word_matrix, paper_topic_model.topic_word_matrix
        )

    def test_save_appends_npz_suffix(self, paper_topic_model, tmp_path):
        path = paper_topic_model.save(tmp_path / "model")
        assert path.suffix == ".npz"
        loaded = MatrixTopicModel.load(tmp_path / "model")
        assert loaded.validate() or loaded.num_topics == 2

    def test_loaded_model_usable_for_inference(self, paper_topic_model, tmp_path):
        path = paper_topic_model.save(tmp_path / "model.npz")
        loaded = MatrixTopicModel.load(path)
        vector = infer_query_vector(loaded, ["lebron", "nbaplayoffs"])
        assert int(np.argmax(vector)) == 0


class TestQueryParadigms:
    def test_query_by_document(self, paper_topic_model):
        document = ["cavs", "defeat", "raptors", "nbaplayoffs", "lebron", "point"]
        vector = infer_document_query_vector(paper_topic_model, document)
        assert vector.shape == (2,)
        assert vector.sum() == pytest.approx(1.0)
        assert vector[0] > vector[1]

    def test_personalized_vector_prefers_recent_posts(self, paper_topic_model):
        inferencer = TopicInferencer(paper_topic_model, alpha=0.05)
        old_posts = [["pl", "champion", "manutd"]] * 3
        recent_post = [["lebron", "nbaplayoffs", "cavs"]]
        vector = infer_personalized_vector(
            paper_topic_model, old_posts + recent_post, inferencer=inferencer, decay=0.3
        )
        # The most recent (basketball) post dominates under strong decay.
        assert vector[0] > vector[1]
        balanced = infer_personalized_vector(
            paper_topic_model, old_posts + recent_post, inferencer=inferencer, decay=1.0
        )
        # Without decay the three soccer posts outweigh the single basketball one.
        assert balanced[1] > balanced[0]

    def test_personalized_vector_empty_history_is_uniform(self, paper_topic_model):
        vector = infer_personalized_vector(paper_topic_model, [])
        np.testing.assert_allclose(vector, 0.5)

    def test_personalized_vector_invalid_decay(self, paper_topic_model):
        with pytest.raises(ValueError):
            infer_personalized_vector(paper_topic_model, [["pl"]], decay=0.0)
        with pytest.raises(ValueError):
            infer_personalized_vector(paper_topic_model, [["pl"]], decay=1.5)


def two_theme_corpus(theme: str, count: int = 40):
    rng = np.random.default_rng(hash(theme) % (2**31))
    themes = {
        "sports": ["goal", "match", "league", "striker", "penalty", "coach"],
        "tech": ["software", "cloud", "compiler", "kernel", "network", "database"],
        "food": ["recipe", "chef", "flavor", "baking", "noodle", "dessert"],
    }
    words = themes[theme]
    return [list(rng.choice(words, size=6)) for _ in range(count)]


class TestIncrementalTopicModelManager:
    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            IncrementalTopicModelManager(num_topics=0)
        with pytest.raises(ValueError):
            IncrementalTopicModelManager(num_topics=2, model_kind="bogus")
        with pytest.raises(ValueError):
            IncrementalTopicModelManager(num_topics=2, blend=1.5)

    def test_model_unavailable_before_refresh(self):
        manager = IncrementalTopicModelManager(num_topics=2, seed=1)
        assert not manager.has_model
        with pytest.raises(RuntimeError):
            _ = manager.model

    def test_refresh_requires_documents(self):
        manager = IncrementalTopicModelManager(num_topics=2, seed=1)
        with pytest.raises(ValueError):
            manager.refresh()

    def test_initial_training_from_buffer(self):
        manager = IncrementalTopicModelManager(num_topics=2, iterations=15, seed=3)
        manager.observe_many(two_theme_corpus("sports") + two_theme_corpus("tech"))
        assert manager.needs_refresh()
        model = manager.refresh()
        assert manager.has_model
        assert manager.refresh_count == 1
        assert model.num_topics == 2
        assert model.validate()

    def test_bootstrap_from_existing_model(self, paper_topic_model):
        manager = IncrementalTopicModelManager(num_topics=2, seed=3)
        manager.bootstrap(paper_topic_model)
        assert manager.has_model
        assert manager.model is paper_topic_model
        assert manager.refresh_count == 0

    def test_drift_detection_on_new_vocabulary(self, paper_topic_model):
        manager = IncrementalTopicModelManager(
            num_topics=2, oov_threshold=0.3, iterations=10, seed=4
        )
        manager.bootstrap(paper_topic_model)
        # Documents from a theme the paper model never saw: high OOV rate.
        manager.observe_many(two_theme_corpus("food", count=30))
        report = manager.drift_report()
        assert isinstance(report, DriftReport)
        assert report.out_of_vocabulary_rate > 0.9
        assert manager.needs_refresh()

    def test_no_drift_on_in_vocabulary_documents(self, paper_topic_model):
        manager = IncrementalTopicModelManager(
            num_topics=2, oov_threshold=0.3, likelihood_threshold=-50.0, seed=4
        )
        manager.bootstrap(paper_topic_model)
        manager.observe_many([["pl", "champion"], ["lebron", "nbaplayoffs"]] * 10)
        assert manager.drift_report().out_of_vocabulary_rate == 0.0
        assert not manager.needs_refresh()
        assert manager.maybe_refresh() is None

    def test_maybe_refresh_retrains_on_drift(self, paper_topic_model):
        manager = IncrementalTopicModelManager(
            num_topics=2, oov_threshold=0.3, iterations=12, blend=0.0, seed=5
        )
        manager.bootstrap(paper_topic_model)
        manager.observe_many(two_theme_corpus("food", count=40))
        refreshed = manager.maybe_refresh()
        assert refreshed is not None
        assert manager.refresh_count == 1
        # The refreshed model now covers the new vocabulary.
        assert manager.drift_report().out_of_vocabulary_rate < 0.1

    def test_blending_keeps_old_vocabulary(self, paper_topic_model):
        manager = IncrementalTopicModelManager(
            num_topics=2, iterations=12, blend=0.5, seed=6
        )
        manager.bootstrap(paper_topic_model)
        manager.observe_many(two_theme_corpus("food", count=40))
        model = manager.refresh()
        # Old words (from the paper model) keep non-zero probability somewhere.
        assert "lebron" in model.vocabulary
        assert float(model.word_probabilities("lebron").sum()) > 0.0
        assert "recipe" in model.vocabulary
        assert model.validate()

    def test_buffer_is_bounded(self):
        manager = IncrementalTopicModelManager(num_topics=2, buffer_size=10, seed=1)
        manager.observe_many([["word"]] * 50)
        assert manager.buffered_documents == 10
