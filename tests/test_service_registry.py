"""Tests for standing queries, the registry and the service metrics helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import KSIRQuery
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.registry import QueryRegistry, StandingQuery


def make_query(*weights: float, k: int = 3) -> KSIRQuery:
    return KSIRQuery(k=k, vector=np.array(weights, dtype=float))


class TestStandingQuery:
    def test_topics_mirror_query_support(self):
        standing = StandingQuery("q1", make_query(0.0, 0.4, 0.6))
        assert standing.topics == (1, 2)

    def test_no_ttl_never_expires(self):
        standing = StandingQuery("q1", make_query(1.0, 0.0))
        assert not standing.expired(10**9)

    def test_ttl_countdown_from_registration_bucket(self):
        standing = StandingQuery(
            "q1", make_query(1.0, 0.0), ttl_buckets=3, registered_at_bucket=5
        )
        # Served on buckets 6..8 (three answers), pruned from bucket 9 on.
        assert not standing.expired(7)
        assert not standing.expired(8)
        assert standing.expired(9)

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            StandingQuery("q1", make_query(1.0, 0.0), ttl_buckets=0)
        with pytest.raises(ValueError):
            StandingQuery("q1", make_query(1.0, 0.0), registered_at_bucket=-1)


class TestQueryRegistry:
    def test_register_and_get(self):
        registry = QueryRegistry()
        standing = registry.register(make_query(1.0, 0.0), algorithm="celf", epsilon=0.2)
        assert registry.get(standing.query_id) is standing
        assert standing.algorithm == "celf"
        assert standing.epsilon == 0.2
        assert len(registry) == 1
        assert standing.query_id in registry

    def test_auto_ids_are_unique(self):
        registry = QueryRegistry()
        ids = {registry.register(make_query(1.0, 0.0)).query_id for _ in range(10)}
        assert len(ids) == 10

    def test_auto_ids_skip_explicitly_taken_ids(self):
        registry = QueryRegistry()
        registry.register(make_query(1.0, 0.0), query_id="q00000")
        auto = registry.register(make_query(0.0, 1.0))
        assert auto.query_id != "q00000"
        assert len(registry) == 2

    def test_duplicate_id_rejected(self):
        registry = QueryRegistry()
        registry.register(make_query(1.0, 0.0), query_id="mine")
        with pytest.raises(ValueError):
            registry.register(make_query(0.0, 1.0), query_id="mine")

    def test_unregister(self):
        registry = QueryRegistry()
        standing = registry.register(make_query(1.0, 1.0))
        assert registry.unregister(standing.query_id)
        assert not registry.unregister(standing.query_id)
        assert len(registry) == 0
        assert registry.queries_on_topic(0) == frozenset()

    def test_topic_inverted_index(self):
        registry = QueryRegistry()
        a = registry.register(make_query(1.0, 0.0, 0.0))
        b = registry.register(make_query(0.0, 1.0, 1.0))
        c = registry.register(make_query(1.0, 0.0, 1.0))
        assert registry.queries_on_topic(0) == {a.query_id, c.query_id}
        assert registry.queries_on_topic(1) == {b.query_id}
        assert registry.queries_on_topic(2) == {b.query_id, c.query_id}

    def test_affected_by_unions_dirty_topics(self):
        registry = QueryRegistry()
        a = registry.register(make_query(1.0, 0.0, 0.0))
        b = registry.register(make_query(0.0, 1.0, 0.0))
        registry.register(make_query(0.0, 0.0, 1.0))
        assert registry.affected_by([0, 1]) == {a.query_id, b.query_id}
        assert registry.affected_by([]) == set()
        assert registry.affected_by([7]) == set()

    def test_prune_expired(self):
        registry = QueryRegistry()
        keep = registry.register(make_query(1.0, 0.0))
        drop = registry.register(make_query(0.0, 1.0), ttl_buckets=2, at_bucket=0)
        assert registry.prune_expired(1) == ()
        assert registry.prune_expired(2) == ()  # still served on its last bucket
        expired = registry.prune_expired(3)
        assert [standing.query_id for standing in expired] == [drop.query_id]
        assert registry.ids() == (keep.query_id,)

    def test_iteration_in_registration_order(self):
        registry = QueryRegistry()
        first = registry.register(make_query(1.0, 0.0))
        second = registry.register(make_query(0.0, 1.0))
        assert [s.query_id for s in registry] == [first.query_id, second.query_id]


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 0.99) == 5.0
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 5.0

    def test_unsorted_input(self):
        assert percentile([5.0, 1.0, 3.0], 0.5) == 3.0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestServiceMetrics:
    def test_ratios(self):
        metrics = ServiceMetrics()
        metrics.evaluations = 25
        metrics.reused = 75
        assert metrics.opportunities == 100
        assert metrics.reeval_ratio == pytest.approx(0.25)
        assert metrics.result_cache_hit_rate == pytest.approx(0.75)

    def test_empty_metrics_render(self):
        text = ServiceMetrics().render()
        assert "re-eval ratio" in text
        assert "p50" in text and "p99" in text

    def test_throughput_counts_all_pairs(self):
        metrics = ServiceMetrics()
        metrics.evaluations = 10
        metrics.reused = 30
        metrics.maintenance_timer.add(2.0)
        assert metrics.queries_per_sec == pytest.approx(20.0)
        assert metrics.evaluations_per_sec == pytest.approx(5.0)

    def test_snapshot_hit_rate(self):
        metrics = ServiceMetrics()
        assert metrics.snapshot_hit_rate == 0.0
        metrics.snapshot_hits = 9
        metrics.snapshot_misses = 1
        assert metrics.snapshot_hit_rate == pytest.approx(0.9)
