"""Tests for the social element and social stream data model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import SocialElement
from repro.core.stream import SocialStream, replay_stream


def make_element(element_id=1, timestamp=10, tokens=("a", "b", "a"), references=(), **kwargs):
    return SocialElement(
        element_id=element_id,
        timestamp=timestamp,
        tokens=tokens,
        references=references,
        **kwargs,
    )


class TestSocialElement:
    def test_basic_fields(self):
        element = make_element()
        assert element.element_id == 1
        assert element.timestamp == 10
        assert element.tokens == ("a", "b", "a")
        assert element.references == ()
        assert element.is_original

    def test_distinct_words_preserve_first_seen_order(self):
        element = make_element(tokens=("b", "a", "b", "c", "a"))
        assert element.distinct_words == ("b", "a", "c")

    def test_word_frequencies(self):
        element = make_element(tokens=("a", "b", "a"))
        assert element.word_frequencies == {"a": 2, "b": 1}

    def test_references_make_element_non_original(self):
        element = make_element(references=(5, 6))
        assert not element.is_original
        assert element.references == (5, 6)

    def test_topic_distribution_is_numpy_array(self):
        element = make_element(topic_distribution=[0.25, 0.75])
        assert isinstance(element.topic_distribution, np.ndarray)
        assert element.topic_distribution.tolist() == [0.25, 0.75]

    def test_with_topic_distribution_returns_copy(self):
        element = make_element()
        updated = element.with_topic_distribution(np.array([0.1, 0.9]))
        assert element.topic_distribution is None
        assert updated.topic_distribution is not None
        assert updated.element_id == element.element_id

    def test_to_dict_roundtrip(self):
        element = make_element(
            topic_distribution=[0.5, 0.5], references=(2,), text="raw text", author=7
        )
        payload = element.to_dict()
        restored = SocialElement.from_dict(payload)
        assert restored.element_id == element.element_id
        assert restored.tokens == element.tokens
        assert restored.references == element.references
        assert restored.text == "raw text"
        assert restored.author == 7
        np.testing.assert_allclose(restored.topic_distribution, element.topic_distribution)

    def test_to_dict_without_optionals(self):
        payload = make_element().to_dict()
        assert "topic_distribution" not in payload
        assert "text" not in payload
        restored = SocialElement.from_dict(payload)
        assert restored.topic_distribution is None


class TestSocialStream:
    def test_append_in_order(self):
        stream = SocialStream()
        stream.append(make_element(element_id=1, timestamp=1))
        stream.append(make_element(element_id=2, timestamp=2))
        assert len(stream) == 2
        assert stream.start_time == 1
        assert stream.end_time == 2

    def test_out_of_order_appends_are_sorted(self):
        stream = SocialStream()
        stream.append(make_element(element_id=2, timestamp=5))
        stream.append(make_element(element_id=1, timestamp=1))
        assert [element.element_id for element in stream] == [1, 2]

    def test_out_of_order_build_matches_in_order_build(self):
        # The append contract: any arrival permutation yields a stream
        # identical to one built in (timestamp, element_id) order.
        elements = [
            make_element(element_id=i, timestamp=ts)
            for i, ts in enumerate([7, 2, 9, 2, 5, 11, 1, 5])
        ]
        in_order = SocialStream(
            sorted(elements, key=lambda e: (e.timestamp, e.element_id))
        )
        arrival = SocialStream([elements[i] for i in (3, 6, 0, 7, 5, 1, 4, 2)])
        assert [e.element_id for e in arrival] == [e.element_id for e in in_order]

    def test_timestamp_ties_order_by_element_id(self):
        # Ties are deterministic regardless of arrival order.
        for arrival_ids in ((3, 1, 2), (2, 3, 1), (1, 2, 3)):
            stream = SocialStream(
                make_element(element_id=i, timestamp=5) for i in arrival_ids
            )
            assert [e.element_id for e in stream] == [1, 2, 3]

    def test_late_append_lands_between_existing_ties(self):
        stream = SocialStream(
            [
                make_element(element_id=1, timestamp=5),
                make_element(element_id=4, timestamp=5),
                make_element(element_id=5, timestamp=9),
            ]
        )
        stream.append(make_element(element_id=3, timestamp=5))
        assert [e.element_id for e in stream] == [1, 3, 4, 5]

    def test_duplicate_ids_rejected(self):
        stream = SocialStream([make_element(element_id=1)])
        with pytest.raises(ValueError):
            stream.append(make_element(element_id=1))

    def test_get_and_contains(self):
        stream = SocialStream([make_element(element_id=4, timestamp=3)])
        assert 4 in stream
        assert 9 not in stream
        assert stream.get(4).timestamp == 3
        with pytest.raises(KeyError):
            stream.get(9)

    def test_empty_stream_properties_raise(self):
        stream = SocialStream()
        with pytest.raises(ValueError):
            _ = stream.start_time
        with pytest.raises(ValueError):
            _ = stream.end_time

    def test_elements_between(self):
        stream = SocialStream(
            [make_element(element_id=i, timestamp=i * 10) for i in range(1, 6)]
        )
        between = stream.elements_between(20, 40)
        assert [element.element_id for element in between] == [2, 3, 4]

    def test_getitem_indexing(self):
        stream = SocialStream(
            [make_element(element_id=i, timestamp=i) for i in range(1, 4)]
        )
        assert stream[0].element_id == 1
        assert stream[-1].element_id == 3

    def test_buckets_cover_whole_stream(self):
        stream = SocialStream(
            [make_element(element_id=i, timestamp=i) for i in range(1, 11)]
        )
        buckets = list(stream.buckets(bucket_length=3))
        total = sum(len(bucket) for bucket in buckets)
        assert total == 10
        # Bucket end times advance by the bucket length.
        ends = [bucket.end_time for bucket in buckets]
        assert ends == sorted(ends)
        assert all(b - a == 3 for a, b in zip(ends, ends[1:]))

    def test_buckets_elements_respect_boundaries(self):
        stream = SocialStream(
            [make_element(element_id=i, timestamp=i) for i in range(1, 8)]
        )
        for bucket in stream.buckets(bucket_length=2):
            for element in bucket:
                assert element.timestamp <= bucket.end_time
                assert element.timestamp > bucket.end_time - 2

    def test_buckets_include_empty_periods(self):
        stream = SocialStream(
            [
                make_element(element_id=1, timestamp=1),
                make_element(element_id=2, timestamp=10),
            ]
        )
        buckets = list(stream.buckets(bucket_length=2))
        assert any(len(bucket) == 0 for bucket in buckets)
        assert sum(len(bucket) for bucket in buckets) == 2

    def test_buckets_invalid_length(self):
        stream = SocialStream([make_element()])
        with pytest.raises(ValueError):
            list(stream.buckets(bucket_length=0))

    def test_buckets_empty_stream(self):
        assert list(SocialStream().buckets(bucket_length=5)) == []

    def test_bucket_repr(self):
        stream = SocialStream([make_element(element_id=1, timestamp=1)])
        bucket = next(iter(stream.buckets(bucket_length=5)))
        assert "StreamBucket" in repr(bucket)


class TestBucketEdgeCases:
    def test_empty_stream_yields_no_buckets_even_with_anchor(self):
        assert list(SocialStream().buckets(bucket_length=5)) == []
        assert list(SocialStream().buckets(bucket_length=5, start_time=100)) == []

    def test_single_element_exactly_on_bucket_boundary(self):
        # Buckets cover (t - L, t]: an element at the bucket end belongs
        # to that bucket, and exactly one bucket is emitted.
        stream = SocialStream([make_element(element_id=1, timestamp=5)])
        buckets = list(stream.buckets(bucket_length=3, start_time=3))
        assert [(b.end_time, len(b)) for b in buckets] == [(5, 1)]

    def test_single_element_one_past_boundary_opens_second_bucket(self):
        stream = SocialStream([make_element(element_id=1, timestamp=6)])
        buckets = list(stream.buckets(bucket_length=3, start_time=3))
        assert [(b.end_time, len(b)) for b in buckets] == [(5, 0), (8, 1)]

    def test_start_time_after_last_element_folds_stream_into_first_bucket(self):
        # Documented contract: the first bucket absorbs every element at
        # or before its end, including ones stamped before the anchor.
        stream = SocialStream(
            [make_element(element_id=i, timestamp=i) for i in range(1, 5)]
        )
        buckets = list(stream.buckets(bucket_length=5, start_time=100))
        assert len(buckets) == 1
        assert buckets[0].end_time == 104
        assert [e.element_id for e in buckets[0]] == [1, 2, 3, 4]

    def test_replay_until_mid_bucket_excludes_the_partial_bucket(self):
        # replay_stream compares `until` against bucket *end* times: a
        # bucket whose end lies past `until` is not processed, so a
        # mid-bucket cutoff stops cleanly at the previous boundary.
        stream = SocialStream(
            [make_element(element_id=i, timestamp=i) for i in range(1, 11)]
        )
        seen = []
        replay_stream(
            stream,
            3,
            lambda elements, end_time: seen.append(
                (end_time, tuple(e.element_id for e in elements))
            ),
            until=7,  # mid-bucket: buckets end at 3, 6, 9, 12
        )
        assert seen == [(3, (1, 2, 3)), (6, (4, 5, 6))]

    def test_replay_until_on_boundary_includes_that_bucket(self):
        stream = SocialStream(
            [make_element(element_id=i, timestamp=i) for i in range(1, 11)]
        )
        seen = []
        replay_stream(
            stream, 3, lambda elements, end_time: seen.append(end_time), until=6
        )
        assert seen == [3, 6]
