"""Tests for the representativeness scoring functions.

The most valuable tests here assert against the exact values the paper gives
in its worked example: Example 3.1 (semantic score), Example 3.2 (influence
score), Example 3.4 (optimal query answers) and the ranked-list tuples of
Figure 5.  Property-based tests check the monotonicity and submodularity the
approximation guarantees rely on, and the equivalence of the incremental
marginal-gain bookkeeping with the naive from-scratch evaluators.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scoring import (
    KSIRObjective,
    ProfileBuilder,
    ScoringConfig,
    word_weight,
)
from tests.conftest import PAPER_SCORING, build_paper_context, build_paper_elements, build_paper_topic_model


class TestScoringConfig:
    def test_defaults_are_valid(self):
        config = ScoringConfig()
        assert config.lambda_weight == 0.5
        assert config.influence_weight == pytest.approx(0.5 / 20.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ScoringConfig(lambda_weight=1.5)
        with pytest.raises(ValueError):
            ScoringConfig(eta=0.0)
        with pytest.raises(ValueError):
            ScoringConfig(topic_threshold=1.0)

    def test_influence_weight(self):
        config = ScoringConfig(lambda_weight=0.25, eta=3.0)
        assert config.influence_weight == pytest.approx(0.75 / 3.0)


class TestWordWeight:
    def test_zero_probability_gives_zero_weight(self):
        assert word_weight(3, 0.0) == 0.0

    def test_matches_entropy_formula(self):
        assert word_weight(2, 0.1) == pytest.approx(-2 * 0.1 * np.log(0.1))

    def test_weight_positive_for_probabilities_below_one(self):
        assert word_weight(1, 0.5) > 0.0


class TestProfileBuilder:
    def test_requires_topic_distribution(self, paper_topic_model):
        from repro.core.element import SocialElement

        builder = ProfileBuilder(paper_topic_model, PAPER_SCORING)
        element = SocialElement(element_id=1, timestamp=1, tokens=("pl",))
        with pytest.raises(ValueError):
            builder.build(element)

    def test_rejects_wrong_dimension(self, paper_topic_model):
        from repro.core.element import SocialElement

        builder = ProfileBuilder(paper_topic_model, PAPER_SCORING)
        element = SocialElement(
            element_id=1, timestamp=1, tokens=("pl",), topic_distribution=[1.0, 0.0, 0.0]
        )
        with pytest.raises(ValueError):
            builder.build(element)

    def test_profile_topics_respect_threshold(self, paper_topic_model):
        builder = ProfileBuilder(paper_topic_model, PAPER_SCORING)
        elements = {e.element_id: e for e in build_paper_elements()}
        profile_e4 = builder.build(elements[4])
        # e4 has p_2(e4) = 0, so it only appears on topic 1.
        assert profile_e4.topics == (0,)
        assert profile_e4.topic_probability(1) == 0.0
        assert profile_e4.semantic_score(1) == 0.0

    def test_out_of_vocabulary_words_ignored(self, paper_topic_model):
        from repro.core.element import SocialElement

        builder = ProfileBuilder(paper_topic_model, PAPER_SCORING)
        element = SocialElement(
            element_id=99,
            timestamp=1,
            tokens=("pl", "nosuchword"),
            topic_distribution=[0.0, 1.0],
        )
        profile = builder.build(element)
        vocabulary = paper_topic_model.vocabulary
        assert set(profile.word_weights[1]) == {vocabulary.id_of("pl")}

    def test_word_frequency_scales_weight(self, paper_topic_model):
        from repro.core.element import SocialElement

        builder = ProfileBuilder(paper_topic_model, PAPER_SCORING)
        single = builder.build(
            SocialElement(element_id=1, timestamp=1, tokens=("pl",), topic_distribution=[0.0, 1.0])
        )
        double = builder.build(
            SocialElement(
                element_id=2, timestamp=1, tokens=("pl", "pl"), topic_distribution=[0.0, 1.0]
            )
        )
        assert double.semantic_score(1) == pytest.approx(2 * single.semantic_score(1))


class TestPaperExample31:
    """Example 3.1: the semantic score R_2({e2, e7}) = 0.53."""

    def test_word_weights_match_paper(self, paper_context):
        vocabulary = build_paper_topic_model().vocabulary
        profile_e2 = paper_context.profile(2)
        profile_e7 = paper_context.profile(7)
        weights_e2 = profile_e2.word_weights[1]
        weights_e7 = profile_e7.word_weights[1]
        assert weights_e2[vocabulary.id_of("manutd")] == pytest.approx(0.15, abs=0.005)
        assert weights_e2[vocabulary.id_of("champion")] == pytest.approx(0.18, abs=0.005)
        assert weights_e2[vocabulary.id_of("pl")] == pytest.approx(0.20, abs=0.005)
        assert weights_e7[vocabulary.id_of("champion")] == pytest.approx(0.17, abs=0.005)
        assert weights_e7[vocabulary.id_of("pl")] == pytest.approx(0.19, abs=0.005)

    def test_semantic_score_of_set(self, paper_context):
        assert paper_context.semantic_score([2, 7], topic=1) == pytest.approx(0.53, abs=0.01)

    def test_e7_contributes_nothing_next_to_e2(self, paper_context):
        alone = paper_context.semantic_score([2], topic=1)
        together = paper_context.semantic_score([2, 7], topic=1)
        assert together == pytest.approx(alone)


class TestPaperExample32:
    """Example 3.2: the influence score I_{2,8}({e2, e3}) = 0.93."""

    def test_pairwise_influence_probabilities(self, paper_context):
        # The probabilities used in the example (the paper's topic 2 = index 1).
        assert paper_context.influence_probability(1, 3, 6) == pytest.approx(0.033, abs=0.002)
        assert paper_context.influence_probability(1, 2, 7) == pytest.approx(0.50, abs=0.005)
        assert paper_context.influence_probability(1, 2, 99) == 0.0

    def test_influence_score_of_set(self, paper_context):
        assert paper_context.influence_score([2, 3], topic=1) == pytest.approx(0.93, abs=0.01)

    def test_influence_low_for_off_topic_element(self, paper_context):
        # e3 is mostly on topic 1 (basketball); its influence on topic 2 is low.
        assert paper_context.influence_score([3], topic=1) < 0.1


class TestPaperExample34:
    """Example 3.4: optimal answers for the two example queries."""

    def brute_force_best(self, objective, k):
        best_set, best_value = (), 0.0
        for subset in itertools.combinations(objective.context.active_ids, k):
            value = objective.value(subset)
            if value > best_value:
                best_set, best_value = subset, value
        return set(best_set), best_value

    def test_query_x1_optimum(self, paper_context):
        objective = KSIRObjective(paper_context, np.array([0.5, 0.5]))
        best_set, best_value = self.brute_force_best(objective, k=2)
        assert best_set == {1, 3}
        assert best_value == pytest.approx(0.65, abs=0.01)

    def test_query_x2_optimum(self, paper_context):
        objective = KSIRObjective(paper_context, np.array([0.1, 0.9]))
        best_set, best_value = self.brute_force_best(objective, k=2)
        assert best_set == {1, 2}
        # The paper reports OPT = 0.94; recomputing with the unrounded word
        # weights gives 0.955, so the tolerance covers the paper's rounding.
        assert best_value == pytest.approx(0.95, abs=0.02)


class TestSingletonScores:
    def test_singleton_topic_scores_match_figure5(self, paper_context):
        """The ranked-list tuple values of Figure 5 (δ_i(e) at t = 8)."""
        expected_topic1 = {3: 0.65, 6: 0.48, 8: 0.17, 2: 0.10, 1: 0.06, 5: 0.05}
        expected_topic2 = {1: 0.56, 2: 0.48, 5: 0.27, 7: 0.18, 8: 0.16, 6: 0.13, 3: 0.03}
        for element_id, expected in expected_topic1.items():
            assert paper_context.singleton_topic_score(element_id, 0) == pytest.approx(
                expected, abs=0.01
            )
        for element_id, expected in expected_topic2.items():
            assert paper_context.singleton_topic_score(element_id, 1) == pytest.approx(
                expected, abs=0.01
            )

    def test_singleton_score_weights_topics(self, paper_context):
        vector = np.array([0.5, 0.5])
        expected = 0.5 * paper_context.singleton_topic_score(3, 0) + 0.5 * (
            paper_context.singleton_topic_score(3, 1)
        )
        assert paper_context.singleton_score(3, vector) == pytest.approx(expected)

    def test_objective_singleton_matches_context(self, paper_context):
        vector = np.array([0.3, 0.7])
        objective = KSIRObjective(paper_context, vector)
        for element_id in paper_context.active_ids:
            assert objective.singleton_score(element_id) == pytest.approx(
                paper_context.singleton_score(element_id, vector)
            )


class TestObjectiveIncremental:
    def test_incremental_matches_naive_value(self, paper_context):
        vector = np.array([0.4, 0.6])
        objective = KSIRObjective(paper_context, vector)
        for subset_size in (1, 2, 3):
            for subset in itertools.combinations(paper_context.active_ids, subset_size):
                assert objective.value(subset) == pytest.approx(
                    paper_context.score(subset, vector), abs=1e-9
                )

    def test_add_accumulates_gains(self, paper_context):
        objective = KSIRObjective(paper_context, np.array([0.5, 0.5]))
        state = objective.new_state()
        total = 0.0
        for element_id in (3, 1, 6):
            total += objective.add(element_id, state)
        assert state.value == pytest.approx(total)
        assert state.selected == [3, 1, 6]

    def test_marginal_gain_does_not_mutate(self, paper_context):
        objective = KSIRObjective(paper_context, np.array([0.5, 0.5]))
        state = objective.new_state()
        objective.add(3, state)
        before = state.copy()
        objective.marginal_gain(1, state)
        assert state.value == before.value
        assert state.covered_words == before.covered_words
        assert state.remaining_influence == before.remaining_influence

    def test_evaluation_counting(self, paper_context):
        objective = KSIRObjective(paper_context, np.array([0.5, 0.5]))
        state = objective.new_state()
        objective.singleton_score(3)
        objective.marginal_gain(1, state)
        objective.marginal_gain(1, state)
        assert objective.evaluated_elements == 2
        assert objective.evaluation_calls == 3

    def test_invalid_query_vectors(self, paper_context):
        with pytest.raises(ValueError):
            KSIRObjective(paper_context, np.array([[0.5, 0.5]]))
        with pytest.raises(ValueError):
            KSIRObjective(paper_context, np.array([-0.1, 1.1]))

    def test_state_copy_is_independent(self, paper_context):
        objective = KSIRObjective(paper_context, np.array([0.5, 0.5]))
        state = objective.new_state()
        objective.add(3, state)
        clone = state.copy()
        objective.add(1, clone)
        assert 1 not in state.selected
        assert 1 in clone


query_vectors = st.sampled_from(
    [np.array([1.0, 0.0]), np.array([0.0, 1.0]), np.array([0.5, 0.5]), np.array([0.2, 0.8])]
)


class TestSubmodularityProperties:
    @given(vector=query_vectors, order=st.permutations([1, 2, 3, 5, 6, 7, 8]))
    @settings(max_examples=40, deadline=None)
    def test_monotone(self, vector, order):
        """Adding any element never decreases f(S, x)."""
        context = build_paper_context(time=8)
        objective = KSIRObjective(context, vector)
        state = objective.new_state()
        previous = 0.0
        for element_id in order:
            gain = objective.add(element_id, state)
            assert gain >= -1e-9
            assert state.value >= previous - 1e-9
            previous = state.value

    @given(
        vector=query_vectors,
        subset=st.sets(st.sampled_from([1, 2, 3, 5, 6, 7, 8]), max_size=4),
        extra=st.sampled_from([1, 2, 3, 5, 6, 7, 8]),
        candidate=st.sampled_from([1, 2, 3, 5, 6, 7, 8]),
    )
    @settings(max_examples=80, deadline=None)
    def test_diminishing_returns(self, vector, subset, extra, candidate):
        """Δ(e | S) >= Δ(e | S ∪ {extra}) for any S, extra and e."""
        if candidate in subset or candidate == extra:
            return
        context = build_paper_context(time=8)
        objective = KSIRObjective(context, vector)
        small_state = objective.new_state()
        for element_id in sorted(subset):
            objective.add(element_id, small_state)
        large_state = small_state.copy()
        if extra not in subset:
            objective.add(extra, large_state)
        gain_small = objective.marginal_gain(candidate, small_state)
        gain_large = objective.marginal_gain(candidate, large_state)
        assert gain_small >= gain_large - 1e-9
