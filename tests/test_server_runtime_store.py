"""Persistence semantics of the serving tier's SQLite runtime store.

The store's contract: telemetry survives a process restart (WAL SQLite on
disk), buffered writes become visible on every read, and the restart
counter distinguishes lives of the process.
"""

from __future__ import annotations

import threading

from repro.server.runtime_store import LATENCY_BUCKETS_MS, RuntimeStore


class TestCounters:
    def test_increment_visible_through_buffer(self, tmp_path) -> None:
        with RuntimeStore(tmp_path / "runtime.db") as store:
            store.increment("http_requests", "GET /health|200")
            store.increment("http_requests", "GET /health|200", by=2)
            store.increment("http_requests", "POST /queries|201")
            counters = store.counters()
        assert counters["http_requests"]["GET /health|200"] == 3
        assert counters["http_requests"]["POST /queries|201"] == 1

    def test_counters_survive_reopen(self, tmp_path) -> None:
        path = tmp_path / "runtime.db"
        with RuntimeStore(path) as store:
            store.increment("ws_pushes", by=7)
        with RuntimeStore(path) as store:
            store.increment("ws_pushes", by=5)
            assert store.counters()["ws_pushes"][""] == 12

    def test_restart_counter_increments_per_open(self, tmp_path) -> None:
        path = tmp_path / "runtime.db"
        for expected in (1, 2, 3):
            with RuntimeStore(path) as store:
                assert store.counters()["restarts"][""] == expected

    def test_memory_store_is_ephemeral(self) -> None:
        with RuntimeStore() as store:
            assert store.path == ":memory:"
            store.increment("x")
            assert store.counters()["x"][""] == 1


class TestLatencyHistograms:
    def test_observations_land_in_log_spaced_buckets(self, tmp_path) -> None:
        with RuntimeStore(tmp_path / "runtime.db") as store:
            store.observe_latency("GET /health", 0.4)     # le=1
            store.observe_latency("GET /health", 3.0)     # le=5
            store.observe_latency("GET /health", 900.0)   # le=1000
            store.observe_latency("GET /health", 99999.0)  # +Inf
            histogram = store.histograms()["GET /health"]
        assert histogram["count"] == 4
        assert histogram["buckets"]["1"] == 1
        assert histogram["buckets"]["5"] == 1
        assert histogram["buckets"]["1000"] == 1
        assert histogram["buckets"]["+Inf"] == 1
        assert histogram["total_ms"] > 100_000
        assert histogram["mean_ms"] == histogram["total_ms"] / 4

    def test_percentile_estimates_are_ordered(self, tmp_path) -> None:
        with RuntimeStore(tmp_path / "runtime.db") as store:
            for ms in (1.5, 2.5, 3.0, 40.0, 600.0):
                store.observe_latency("POST /ingest/bucket", ms)
            histogram = store.histograms()["POST /ingest/bucket"]
        assert 0.0 < histogram["p50_ms"] <= histogram["p95_ms"]
        assert histogram["p95_ms"] <= max(LATENCY_BUCKETS_MS)

    def test_histograms_merge_across_restarts(self, tmp_path) -> None:
        path = tmp_path / "runtime.db"
        with RuntimeStore(path) as store:
            store.observe_latency("GET /health", 2.0)
        with RuntimeStore(path) as store:
            store.observe_latency("GET /health", 2.0)
            assert store.histograms()["GET /health"]["count"] == 2

    def test_flush_threshold_does_not_drop_observations(self, tmp_path) -> None:
        with RuntimeStore(tmp_path / "runtime.db") as store:
            for _ in range(store.FLUSH_EVERY * 2 + 3):
                store.observe_latency("GET /stats", 1.0)
            assert store.histograms()["GET /stats"]["count"] == (
                store.FLUSH_EVERY * 2 + 3
            )


class TestWebSocketSessions:
    def test_session_lifecycle_recorded(self, tmp_path) -> None:
        with RuntimeStore(tmp_path / "runtime.db") as store:
            first = store.ws_session_opened("qa")
            second = store.ws_session_opened("qb")
            assert second != first
            store.ws_session_closed(first, pushes=4)
            stats = store.ws_stats()
        assert stats["sessions_total"] == 2
        assert stats["sessions_closed"] == 1
        assert stats["sessions_active"] == 1
        assert stats["pushes_total"] == 4

    def test_sessions_survive_reopen(self, tmp_path) -> None:
        path = tmp_path / "runtime.db"
        with RuntimeStore(path) as store:
            session = store.ws_session_opened("qa")
            store.ws_session_closed(session, pushes=2)
        with RuntimeStore(path) as store:
            stats = store.ws_stats()
        assert stats["sessions_total"] == 1
        assert stats["pushes_total"] == 2


class TestSnapshot:
    def test_snapshot_document_shape(self, tmp_path) -> None:
        with RuntimeStore(tmp_path / "runtime.db") as store:
            store.increment("http_requests", "GET /health|200")
            store.observe_latency("GET /health", 1.0)
            snapshot = store.snapshot()
        assert set(snapshot) == {"meta", "counters", "latency", "websocket"}
        assert "created_unix" in snapshot["meta"]
        assert snapshot["counters"]["restarts"][""] == 1
        assert snapshot["latency"]["GET /health"]["count"] == 1

    def test_close_is_idempotent(self, tmp_path) -> None:
        store = RuntimeStore(tmp_path / "runtime.db")
        store.close()
        store.close()


class TestThreadSafety:
    def test_concurrent_writers_lose_nothing(self, tmp_path) -> None:
        store = RuntimeStore(tmp_path / "runtime.db")
        per_thread = 500

        def work() -> None:
            for _ in range(per_thread):
                store.increment("hits")
                store.observe_latency("GET /health", 1.0)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert store.counters()["hits"][""] == 4 * per_thread
        assert store.histograms()["GET /health"]["count"] == 4 * per_thread
        store.close()
