"""Tests for the k-SIR processing algorithms (MTTS, MTTD and baselines).

The paper's worked example gives exact expected answers: for the query
``q_8(2, (0.5, 0.5))`` both MTTS (Example 4.1) and MTTD (Example 4.3) return
``{e1, e3}`` with score 0.65.  Beyond the example, the algorithms are cross-
checked against brute force and against each other on randomised instances,
and their approximation guarantees are verified empirically.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.algorithms import (
    ALGORITHM_REGISTRY,
    CELF,
    GreedySelection,
    MTTD,
    MTTS,
    SieveStreaming,
    TopKRepresentative,
    make_algorithm,
)
from repro.core.scoring import KSIRObjective
from tests.conftest import build_paper_context
from tests.test_core_ranked_list import build_paper_index

ALL_ALGORITHMS = [
    GreedySelection(),
    CELF(),
    SieveStreaming(epsilon=0.1),
    TopKRepresentative(),
    MTTS(epsilon=0.1),
    MTTD(epsilon=0.1),
]

INDEXED = {"mtts", "mttd", "topk-representative"}


def run_algorithm(algorithm, vector, k=2):
    context = build_paper_context(time=8)
    objective = KSIRObjective(context, np.asarray(vector, dtype=float))
    index = build_paper_index(until_time=8) if algorithm.requires_index else None
    outcome = algorithm.select(objective, k, index=index)
    return objective, outcome


def brute_force_optimum(vector, k=2):
    context = build_paper_context(time=8)
    objective = KSIRObjective(context, np.asarray(vector, dtype=float))
    best_value = 0.0
    for subset in itertools.combinations(context.active_ids, k):
        best_value = max(best_value, objective.value(subset))
    return best_value


class TestRegistry:
    def test_make_algorithm_known_names(self):
        assert isinstance(make_algorithm("mtts", epsilon=0.2), MTTS)
        assert isinstance(make_algorithm("MTTD", epsilon=0.2), MTTD)
        assert isinstance(make_algorithm("celf"), CELF)
        assert isinstance(make_algorithm("sievestreaming", epsilon=0.3), SieveStreaming)
        assert isinstance(make_algorithm("top-k"), TopKRepresentative)

    def test_make_algorithm_unknown_name(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            make_algorithm("nope")

    def test_registry_covers_paper_methods(self):
        for name in ("celf", "sieve", "topk", "mtts", "mttd", "greedy"):
            assert name in ALGORITHM_REGISTRY

    def test_epsilon_validation(self):
        for cls in (MTTS, MTTD, SieveStreaming):
            with pytest.raises(ValueError):
                cls(epsilon=0.0)
            with pytest.raises(ValueError):
                cls(epsilon=1.0)

    def test_repr_mentions_epsilon(self):
        assert "0.25" in repr(MTTS(epsilon=0.25))
        assert "0.25" in repr(MTTD(epsilon=0.25))


class TestPaperExampleQueries:
    """Examples 4.1 and 4.3: q_8(2, (0.5, 0.5)) → {e1, e3}, score 0.65."""

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda a: a.name)
    def test_balanced_query_optimal_set(self, algorithm):
        if algorithm.name == "topk-representative":
            pytest.skip("top-k by singleton score is not expected to find the optimum")
        objective, outcome = run_algorithm(algorithm, [0.5, 0.5], k=2)
        assert set(outcome.element_ids) == {1, 3}
        assert outcome.value == pytest.approx(0.65, abs=0.01)
        assert objective.context.active_count == 7

    @pytest.mark.parametrize(
        "algorithm",
        [GreedySelection(), CELF(), MTTS(epsilon=0.1), MTTD(epsilon=0.1)],
        ids=lambda a: a.name,
    )
    def test_skewed_query_prefers_topic2(self, algorithm):
        _objective, outcome = run_algorithm(algorithm, [0.1, 0.9], k=2)
        assert set(outcome.element_ids) == {1, 2}

    def test_mtts_example_walkthrough_epsilon_03(self):
        """Example 4.1 uses ε = 0.3 and still returns {e1, e3}."""
        _objective, outcome = run_algorithm(MTTS(epsilon=0.3), [0.5, 0.5], k=2)
        assert set(outcome.element_ids) == {1, 3}

    def test_mttd_example_walkthrough_epsilon_03(self):
        """Example 4.3 uses ε = 0.3 and returns {e1, e3}."""
        _objective, outcome = run_algorithm(MTTD(epsilon=0.3), [0.5, 0.5], k=2)
        assert set(outcome.element_ids) == {1, 3}

    def test_topk_representative_picks_highest_singletons(self):
        objective, outcome = run_algorithm(TopKRepresentative(), [0.5, 0.5], k=2)
        scores = {
            eid: objective.context.singleton_score(eid, np.array([0.5, 0.5]))
            for eid in objective.context.active_ids
        }
        expected = set(sorted(scores, key=lambda eid: -scores[eid])[:2])
        assert set(outcome.element_ids) == expected


class TestGuaranteesAndInvariants:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda a: a.name)
    @pytest.mark.parametrize("vector", [[1.0, 0.0], [0.0, 1.0], [0.5, 0.5], [0.8, 0.2]])
    def test_result_size_bounded_by_k(self, algorithm, vector):
        for k in (1, 2, 4):
            _objective, outcome = run_algorithm(algorithm, vector, k=k)
            assert len(outcome.element_ids) <= k
            assert len(set(outcome.element_ids)) == len(outcome.element_ids)

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda a: a.name)
    def test_value_matches_recomputed_score(self, algorithm):
        objective, outcome = run_algorithm(algorithm, [0.4, 0.6], k=3)
        recomputed = objective.context.score(outcome.element_ids, np.array([0.4, 0.6]))
        assert outcome.value == pytest.approx(recomputed, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("vector", [[1.0, 0.0], [0.0, 1.0], [0.5, 0.5], [0.3, 0.7]])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_greedy_and_celf_agree(self, vector, k):
        _objective, greedy_outcome = run_algorithm(GreedySelection(), vector, k=k)
        _objective, celf_outcome = run_algorithm(CELF(), vector, k=k)
        assert celf_outcome.value == pytest.approx(greedy_outcome.value, abs=1e-9)

    @pytest.mark.parametrize("vector", [[1.0, 0.0], [0.5, 0.5], [0.2, 0.8]])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_approximation_guarantees_hold(self, vector, k):
        optimum = brute_force_optimum(vector, k=k)
        bounds = {
            "celf": 1.0 - 1.0 / np.e,
            "greedy": 1.0 - 1.0 / np.e,
            "sievestreaming": 0.5 - 0.1,
            "mtts": 0.5 - 0.1,
            "mttd": 1.0 - 1.0 / np.e - 0.1,
        }
        for algorithm in ALL_ALGORITHMS:
            bound = bounds.get(algorithm.name)
            if bound is None:
                continue
            _objective, outcome = run_algorithm(algorithm, vector, k=k)
            assert outcome.value >= bound * optimum - 1e-9, algorithm.name

    def test_mtts_evaluates_each_element_at_most_once(self):
        objective, outcome = run_algorithm(MTTS(epsilon=0.1), [0.5, 0.5], k=2)
        assert outcome.evaluated_elements <= objective.context.active_count

    def test_mtts_prunes_some_evaluations_on_skewed_query(self):
        """With a single-topic query MTTS should not touch the other list."""
        objective, outcome = run_algorithm(MTTS(epsilon=0.3), [1.0, 0.0], k=1)
        assert outcome.evaluated_elements < objective.context.active_count

    def test_index_required_error(self):
        context = build_paper_context()
        objective = KSIRObjective(context, np.array([0.5, 0.5]))
        with pytest.raises(ValueError, match="requires the ranked-list index"):
            MTTS().select(objective, 2, index=None)

    def test_invalid_k_rejected(self):
        context = build_paper_context()
        objective = KSIRObjective(context, np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            CELF().select(objective, 0)

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda a: a.name)
    def test_k_larger_than_active_set(self, algorithm):
        _objective, outcome = run_algorithm(algorithm, [0.5, 0.5], k=50)
        assert len(outcome.element_ids) <= 7

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS, ids=lambda a: a.name)
    def test_extras_are_floats(self, algorithm):
        _objective, outcome = run_algorithm(algorithm, [0.5, 0.5], k=2)
        assert all(isinstance(value, float) for value in outcome.extras.values())


class TestSyntheticCrossCheck:
    """Cross-check the algorithms on a generated stream (beyond the example)."""

    @pytest.fixture(scope="class")
    def prepared(self, tiny_processor):
        return tiny_processor

    @pytest.mark.parametrize("topic", [0, 1, 2])
    def test_mttd_close_to_celf(self, prepared, tiny_dataset, topic):
        query = tiny_dataset.make_query(k=8, topic=topic)
        celf_result = prepared.query(query, algorithm="celf")
        mttd_result = prepared.query(query, algorithm="mttd", epsilon=0.1)
        mtts_result = prepared.query(query, algorithm="mtts", epsilon=0.1)
        sieve_result = prepared.query(query, algorithm="sieve", epsilon=0.1)
        topk_result = prepared.query(query, algorithm="topk")
        assert mttd_result.score >= 0.95 * celf_result.score
        assert mtts_result.score >= 0.80 * celf_result.score
        assert sieve_result.score >= 0.70 * celf_result.score
        assert topk_result.score <= celf_result.score + 1e-9

    def test_indexed_algorithms_evaluate_fewer_elements(self, prepared, tiny_dataset):
        query = tiny_dataset.make_query(k=5, topic=1)
        celf_result = prepared.query(query, algorithm="celf")
        mtts_result = prepared.query(query, algorithm="mtts")
        assert mtts_result.evaluated_elements <= celf_result.evaluated_elements
