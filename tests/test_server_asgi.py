"""The bundled stdlib ASGI server over real TCP sockets.

`repro.server.asgi.serve` + the stdlib HTTP/WebSocket clients from
`repro.server.ws_client` give an end-to-end path with zero third-party
dependencies: real HTTP parsing, real RFC 6455 frames, real keep-alive —
the environment `repro-ksir server` runs in when uvicorn is absent.
"""

from __future__ import annotations

import asyncio
import json

import pytest
from server_harness import element, ingest_payload, make_engine

from repro.server.app import create_app
from repro.server.asgi import serve
from repro.server.ws_client import HttpClient, WebSocketClient


def run(coroutine):
    """Drive one async scenario from a synchronous test."""
    return asyncio.run(coroutine)


async def _with_server(scenario) -> None:
    app = create_app(make_engine())
    try:
        async with await serve(app, host="127.0.0.1", port=0) as handle:
            await scenario(handle)
    finally:
        app.close()


class TestHttpOverSockets:
    def test_roundtrip_and_keep_alive(self) -> None:
        async def scenario(handle) -> None:
            async with HttpClient(handle.host, handle.port) as client:
                health = await client.get("/health")
                assert health.status == 200
                assert health.json()["status"] == "ok"

                # Same kept-alive socket serves a POST and another GET.
                created = await client.post(
                    "/queries",
                    {"vector": [1.0, 0.0], "k": 2, "query_id": "qa"},
                )
                assert created.status == 201
                listing = await client.get("/queries")
                assert listing.json()["count"] == 1

        run(_with_server(scenario))

    def test_ingest_then_result(self) -> None:
        async def scenario(handle) -> None:
            async with HttpClient(handle.host, handle.port) as client:
                await client.post(
                    "/queries", {"vector": [1.0, 0.0], "k": 2, "query_id": "qa"}
                )
                ingested = await client.post(
                    "/ingest/bucket", ingest_payload(1, element(1, 1, 0))
                )
                assert ingested.status == 200
                assert ingested.json()["updated"] == ["qa"]
                result = await client.get("/queries/qa/result")
                assert result.json()["result"]["result"]["element_ids"] == [1]

        run(_with_server(scenario))

    def test_error_statuses_over_the_wire(self) -> None:
        async def scenario(handle) -> None:
            async with HttpClient(handle.host, handle.port) as client:
                assert (await client.get("/nope")).status == 404
                bad = await client.post("/queries", {"k": 2})
                assert bad.status == 422
                assert "error" in bad.json()
                assert (await client.delete("/queries/ghost")).status == 404

        run(_with_server(scenario))

    def test_metrics_exposition_served(self) -> None:
        async def scenario(handle) -> None:
            async with HttpClient(handle.host, handle.port) as client:
                await client.get("/health")
                metrics = await client.get("/metrics")
                assert metrics.status == 200
                assert b"ksir_http_requests_total" in metrics.body

        run(_with_server(scenario))


class TestWebSocketOverSockets:
    def test_push_roundtrip(self) -> None:
        async def scenario(handle) -> None:
            async with HttpClient(handle.host, handle.port) as client:
                await client.post(
                    "/queries", {"vector": [1.0, 0.0], "k": 2, "query_id": "qa"}
                )
                ws = await WebSocketClient.connect(
                    handle.host, handle.port, "/ws/queries/qa"
                )
                try:
                    snapshot = await ws.recv_json(timeout=10)
                    assert snapshot["type"] == "snapshot"

                    await client.post(
                        "/ingest/bucket", ingest_payload(1, element(1, 1, 0))
                    )
                    delta = await ws.recv_json(timeout=10)
                    assert delta["type"] == "delta"
                    assert delta["element_ids"] == [1]
                finally:
                    await ws.close()

        run(_with_server(scenario))

    def test_client_text_is_tolerated(self) -> None:
        async def scenario(handle) -> None:
            async with HttpClient(handle.host, handle.port) as client:
                await client.post(
                    "/queries", {"vector": [1.0, 0.0], "k": 1, "query_id": "qa"}
                )
                ws = await WebSocketClient.connect(
                    handle.host, handle.port, "/ws/queries/qa"
                )
                try:
                    await ws.recv_json(timeout=10)  # snapshot
                    # A client frame must not kill the session.
                    await ws.send_text(json.dumps({"type": "ping"}))
                    await client.post(
                        "/ingest/bucket", ingest_payload(1, element(1, 1, 0))
                    )
                    delta = await ws.recv_json(timeout=10)
                    assert delta["type"] == "delta"
                finally:
                    await ws.close()

        run(_with_server(scenario))

    def test_unknown_query_rejected_with_app_close_code(self) -> None:
        async def scenario(handle) -> None:
            ws = await WebSocketClient.connect(
                handle.host, handle.port, "/ws/queries/ghost"
            )
            try:
                message = await ws.recv_json(timeout=10)
                assert message["type"] == "error"
                assert await ws.recv(timeout=10) is None
                assert ws.close_code == 4404
            finally:
                await ws.close()

        run(_with_server(scenario))

    def test_bad_upgrade_path_is_refused(self) -> None:
        async def scenario(handle) -> None:
            # Close-before-accept surfaces as an HTTP refusal, not a 101.
            with pytest.raises(ConnectionError):
                await WebSocketClient.connect(
                    handle.host, handle.port, "/ws/bogus"
                )

        run(_with_server(scenario))
