"""Tests for the composable EngineConfig of the repro.api facade."""

from __future__ import annotations

import argparse

import pytest

from repro.api import (
    BACKEND_ALIASES,
    EngineConfig,
    InferenceConfig,
    KernelConfig,
    ServiceConfig,
    StreamConfig,
    canonical_backend_name,
)
from repro.cluster import ClusterConfig
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ScoringConfig


class TestBackendNames:
    def test_canonical_names_resolve_to_themselves(self):
        for name in ("local", "sharded", "service"):
            assert canonical_backend_name(name) == name

    def test_cli_aliases(self):
        assert canonical_backend_name("single") == "local"
        assert canonical_backend_name("cluster") == "sharded"
        assert canonical_backend_name("  Cluster ") == "sharded"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            canonical_backend_name("quantum")

    def test_alias_table_covers_canonical_names(self):
        assert set(BACKEND_ALIASES.values()) == {"local", "sharded", "service"}


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.backend == "local"
        assert config.cluster is None
        assert config.service == ServiceConfig()
        assert config.inference is None
        assert not config.is_sharded

    def test_sharded_backend_gets_default_cluster(self):
        config = EngineConfig(backend="cluster")
        assert config.backend == "sharded"
        assert config.cluster == ClusterConfig()
        assert config.is_sharded

    def test_with_backend(self):
        config = EngineConfig(backend="sharded")
        serving = config.with_backend("service")
        assert serving.backend == "service"
        assert serving.cluster == config.cluster  # still sharded underneath
        assert serving.is_sharded

    def test_round_trip_defaults(self):
        config = EngineConfig()
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_round_trip_full(self):
        config = EngineConfig(
            backend="service",
            processor=ProcessorConfig(
                window_length=7200,
                bucket_length=600,
                scoring=ScoringConfig(lambda_weight=0.3, eta=4.0, topic_threshold=1e-3),
                default_algorithm="celf",
                default_epsilon=0.2,
                batched_ingest=False,
            ),
            cluster=ClusterConfig(
                num_shards=3,
                partitioner="load-balanced",
                backend="serial",
                transport="shm",
                candidate_budget=64,
                budget_scale=2.0,
                max_workers=2,
            ),
            service=ServiceConfig(max_workers=7, incremental=False),
            inference=InferenceConfig(alpha=0.05, sparsity_threshold=0.05),
            kernels=KernelConfig(mode="numpy"),
        )
        payload = config.to_dict()
        assert payload["kernels"] == {"mode": "numpy"}
        assert EngineConfig.from_dict(payload) == config

    def test_dict_is_json_compatible(self):
        import json

        payload = json.loads(json.dumps(EngineConfig(backend="sharded").to_dict()))
        assert EngineConfig.from_dict(payload) == EngineConfig(backend="sharded")

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown engine keys"):
            EngineConfig.from_dict({"backnd": "local"})
        with pytest.raises(ValueError, match="unknown processor keys"):
            EngineConfig.from_dict({"processor": {"window": 10}})
        with pytest.raises(ValueError, match="unknown scoring keys"):
            EngineConfig.from_dict({"processor": {"scoring": {"lambda": 0.5}}})
        with pytest.raises(ValueError, match="unknown cluster keys"):
            EngineConfig.from_dict({"cluster": {"shards": 4}})
        with pytest.raises(ValueError, match="unknown service keys"):
            EngineConfig.from_dict({"service": {"threads": 4}})
        with pytest.raises(ValueError, match="unknown inference keys"):
            EngineConfig.from_dict({"inference": {"a": 1.0}})
        with pytest.raises(ValueError, match="unknown kernels keys"):
            EngineConfig.from_dict({"kernels": {"backend": "auto"}})

    def test_kernel_config_validates_mode(self):
        assert KernelConfig().mode == "auto"
        with pytest.raises(ValueError, match="unknown kernel mode"):
            KernelConfig(mode="fortran")

    def test_kernels_flag_reaches_config(self):
        parser = argparse.ArgumentParser()
        EngineConfig.add_arguments(parser)
        config = EngineConfig.from_args(parser.parse_args(["--kernels", "numpy"]))
        assert config.kernels == KernelConfig(mode="numpy")


class TestValidation:
    def test_service_config_requires_workers(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_workers=0)

    def test_inference_config_validates(self):
        with pytest.raises(ValueError):
            InferenceConfig(method="magic")
        with pytest.raises(ValueError):
            InferenceConfig(iterations=0)
        with pytest.raises(ValueError):
            InferenceConfig(sparsity_threshold=1.5)


def parse(extra, service=False):
    parser = argparse.ArgumentParser()
    EngineConfig.add_arguments(parser, service=service)
    return parser.parse_args(extra)


class TestFromArgs:
    def test_defaults_build_local_engine(self):
        config = EngineConfig.from_args(parse([]))
        assert config.backend == "local"
        assert config.cluster is None
        assert config.processor.window_length == 24 * 3600
        assert config.processor.bucket_length == 15 * 60
        assert config.processor.scoring.eta == 1.5

    def test_cluster_flags_build_sharded_engine(self):
        config = EngineConfig.from_args(
            parse(
                [
                    "--backend", "cluster", "--shards", "6",
                    "--partitioner", "round-robin", "--fanout", "serial",
                    "--window-hours", "3", "--bucket-minutes", "30",
                    "--lambda-weight", "0.7", "--eta", "2.0",
                ]
            )
        )
        assert config.backend == "sharded"
        assert config.cluster == ClusterConfig(
            num_shards=6, partitioner="round-robin", backend="serial"
        )
        assert config.processor.window_length == 3 * 3600
        assert config.processor.bucket_length == 30 * 60
        assert config.processor.scoring.lambda_weight == 0.7
        assert config.processor.scoring.eta == 2.0

    def test_transport_flag_overrides_the_fanout(self):
        config = EngineConfig.from_args(
            parse(["--backend", "cluster", "--transport", "shm"])
        )
        assert config.cluster is not None
        assert config.cluster.transport == "shm"
        assert config.cluster.effective_transport == "shm"
        # Without the flag the fanout alone decides.
        bare = EngineConfig.from_args(parse(["--backend", "cluster"]))
        assert bare.cluster is not None
        assert bare.cluster.transport is None
        assert bare.cluster.effective_transport == "thread"

    def test_service_mode_wraps_any_backend(self):
        config = EngineConfig.from_args(
            parse(["--workers", "2", "--naive"], service=True), service=True
        )
        assert config.backend == "service"
        assert config.cluster is None
        assert config.service == ServiceConfig(max_workers=2, incremental=False)

        sharded = EngineConfig.from_args(
            parse(["--backend", "cluster"], service=True), service=True
        )
        assert sharded.backend == "service"
        assert sharded.cluster is not None

    def test_from_args_defaults_to_query_inference(self):
        config = EngineConfig.from_args(parse([]))
        assert config.inference == InferenceConfig(alpha=0.05, sparsity_threshold=0.05)
        bare = EngineConfig.from_args(parse([]), inference=None)
        assert bare.inference is None


class TestStreamsSection:
    def test_streams_round_trip(self):
        config = EngineConfig(
            streams=StreamConfig(source="jsonl", allowed_lateness=3)
        )
        assert EngineConfig.from_dict(config.to_dict()) == config
        assert config.to_dict()["streams"]["allowed_lateness"] == 3

    def test_absent_streams_round_trips_to_none(self):
        config = EngineConfig()
        assert config.streams is None
        assert config.to_dict()["streams"] is None
        assert EngineConfig.from_dict(config.to_dict()).streams is None

    def test_stream_config_validation(self):
        with pytest.raises(ValueError, match="allowed_lateness"):
            StreamConfig(allowed_lateness=-1)
        with pytest.raises(ValueError, match="unknown window policy"):
            StreamConfig(window_policy="hopping")
        with pytest.raises(ValueError, match="session_gap"):
            StreamConfig(window_policy="session")
        with pytest.raises(ValueError, match="unknown StreamConfig keys"):
            StreamConfig.from_dict({"lateness": 1})

    def test_window_policy_is_mirrored_into_processor(self):
        config = EngineConfig(
            streams=StreamConfig(window_policy="session", session_gap=600)
        )
        assert config.processor.window_policy == "session"
        assert config.processor.session_gap == 600

    def test_matching_policy_in_both_sections_is_accepted(self):
        config = EngineConfig(
            processor=ProcessorConfig(window_policy="tumbling"),
            streams=StreamConfig(window_policy="tumbling"),
        )
        assert config.processor.window_policy == "tumbling"

    def test_conflicting_policies_are_rejected(self):
        with pytest.raises(ValueError, match="configure the policy once"):
            EngineConfig(
                processor=ProcessorConfig(window_policy="tumbling"),
                streams=StreamConfig(window_policy="session", session_gap=60),
            )

    def test_stream_flags_build_streams_section(self):
        config = EngineConfig.from_args(
            parse(
                [
                    "--source", "citations", "--allowed-lateness", "2",
                    "--window-policy", "session", "--session-gap", "1800",
                ]
            )
        )
        assert config.streams == StreamConfig(
            source="citations",
            allowed_lateness=2,
            window_policy="session",
            session_gap=1800,
        )
        assert config.processor.window_policy == "session"

    def test_stream_flag_defaults_are_inert(self):
        config = EngineConfig.from_args(parse([]))
        assert config.streams == StreamConfig()
        assert config.processor.window_policy == "sliding"
