"""Tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(["generate", "tiny", "--seed", "7"])
        assert args.command == "generate"
        assert args.profile == "tiny"
        assert args.seed == 7

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "not-a-profile"])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "music", "concert"])
        assert args.keywords == ["music", "concert"]
        assert args.algorithm == "mttd"
        assert args.k == 10

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table3"])
        assert args.name == "table3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestCommands:
    def test_generate_writes_stream_and_model(self, tmp_path, capsys):
        exit_code = main(
            ["generate", "tiny", "--seed", "3", "--output-dir", str(tmp_path)]
        )
        assert exit_code == 0
        assert (tmp_path / "tiny" / "stream.jsonl").exists()
        assert (tmp_path / "tiny" / "topic_model.npz").exists()
        output = capsys.readouterr().out
        assert "wrote" in output

    def test_stats_from_profile(self, capsys):
        exit_code = main(["stats", "--profile", "tiny", "--seed", "3"])
        assert exit_code == 0
        assert "tiny" in capsys.readouterr().out

    def test_stats_from_stream_file(self, tmp_path, capsys):
        main(["generate", "tiny", "--seed", "3", "--output-dir", str(tmp_path)])
        capsys.readouterr()
        exit_code = main(["stats", "--stream", str(tmp_path / "tiny" / "stream.jsonl")])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "elements:" in output

    def test_stats_requires_exactly_one_source(self, capsys):
        assert main(["stats"]) == 2
        assert main(["stats", "--profile", "tiny", "--stream", "x.jsonl"]) == 2

    def test_query_on_generated_profile(self, capsys):
        exit_code = main(
            [
                "query", "soccer", "goal",
                "--profile", "tiny", "--k", "4",
                "--algorithm", "mttd", "--window-hours", "3",
                "--eta", "1.0", "--seed", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "mttd" in output
        assert "replayed" in output

    def test_query_from_saved_stream_and_model(self, tmp_path, capsys):
        main(["generate", "tiny", "--seed", "3", "--output-dir", str(tmp_path)])
        capsys.readouterr()
        exit_code = main(
            [
                "query", "soccer",
                "--stream", str(tmp_path / "tiny" / "stream.jsonl"),
                "--model", str(tmp_path / "tiny" / "topic_model.npz"),
                "--k", "3", "--window-hours", "3", "--eta", "1.0",
            ]
        )
        assert exit_code == 0
        assert "score" in capsys.readouterr().out

    def test_query_with_stream_requires_model(self, tmp_path, capsys):
        main(["generate", "tiny", "--seed", "3", "--output-dir", str(tmp_path)])
        capsys.readouterr()
        exit_code = main(
            ["query", "soccer", "--stream", str(tmp_path / "tiny" / "stream.jsonl")]
        )
        assert exit_code == 2

    def test_experiment_table3(self, capsys):
        exit_code = main(["experiment", "table3", "--datasets", "tiny", "--seed", "3"])
        assert exit_code == 0
        assert "Table 3" in capsys.readouterr().out

    def test_experiment_figure7_on_tiny(self, capsys):
        exit_code = main(
            ["experiment", "figure7", "--datasets", "tiny", "--queries", "2", "--seed", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "mttd" in output


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.profile == "tiny"
        assert args.queries == 100
        assert args.algorithm == "mttd"
        assert not args.naive
        assert args.ttl_buckets is None

    def test_serve_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--algorithm", "nope"])

    def test_serve_end_to_end_prints_metrics_report(self, capsys):
        exit_code = main(
            [
                "serve", "--profile", "tiny", "--queries", "10", "--k", "3",
                "--window-hours", "3", "--bucket-minutes", "30", "--eta", "1.0",
                "--workers", "2", "--seed", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "standing queries" in output
        assert "p50" in output and "p99" in output
        assert "re-eval ratio" in output
        assert "snapshot cache" in output
        assert "q00000" in output  # sample standing results are printed

    def test_serve_naive_mode(self, capsys):
        exit_code = main(
            [
                "serve", "--profile", "tiny", "--queries", "5", "--k", "3",
                "--window-hours", "3", "--bucket-minutes", "30", "--eta", "1.0",
                "--naive", "--seed", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "naive maintenance" in output
        assert "re-eval ratio 1.000" in output
