"""Tests for the command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_arguments(self):
        args = build_parser().parse_args(["generate", "tiny", "--seed", "7"])
        assert args.command == "generate"
        assert args.profile == "tiny"
        assert args.seed == 7

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "not-a-profile"])

    def test_query_defaults(self):
        args = build_parser().parse_args(["query", "music", "concert"])
        assert args.keywords == ["music", "concert"]
        assert args.algorithm == "mttd"
        assert args.k == 10

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "table3"])
        assert args.name == "table3"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestCommands:
    def test_generate_writes_stream_and_model(self, tmp_path, capsys):
        exit_code = main(
            ["generate", "tiny", "--seed", "3", "--output-dir", str(tmp_path)]
        )
        assert exit_code == 0
        assert (tmp_path / "tiny" / "stream.jsonl").exists()
        assert (tmp_path / "tiny" / "topic_model.npz").exists()
        output = capsys.readouterr().out
        assert "wrote" in output

    def test_stats_from_profile(self, capsys):
        exit_code = main(["stats", "--profile", "tiny", "--seed", "3"])
        assert exit_code == 0
        assert "tiny" in capsys.readouterr().out

    def test_stats_from_stream_file(self, tmp_path, capsys):
        main(["generate", "tiny", "--seed", "3", "--output-dir", str(tmp_path)])
        capsys.readouterr()
        exit_code = main(["stats", "--stream", str(tmp_path / "tiny" / "stream.jsonl")])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "elements:" in output

    def test_stats_requires_exactly_one_source(self, capsys):
        assert main(["stats"]) == 2
        assert main(["stats", "--profile", "tiny", "--stream", "x.jsonl"]) == 2

    def test_query_on_generated_profile(self, capsys):
        exit_code = main(
            [
                "query", "soccer", "goal",
                "--profile", "tiny", "--k", "4",
                "--algorithm", "mttd", "--window-hours", "3",
                "--eta", "1.0", "--seed", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "mttd" in output
        assert "replayed" in output

    def test_query_from_saved_stream_and_model(self, tmp_path, capsys):
        main(["generate", "tiny", "--seed", "3", "--output-dir", str(tmp_path)])
        capsys.readouterr()
        exit_code = main(
            [
                "query", "soccer",
                "--stream", str(tmp_path / "tiny" / "stream.jsonl"),
                "--model", str(tmp_path / "tiny" / "topic_model.npz"),
                "--k", "3", "--window-hours", "3", "--eta", "1.0",
            ]
        )
        assert exit_code == 0
        assert "score" in capsys.readouterr().out

    def test_query_with_stream_requires_model(self, tmp_path, capsys):
        main(["generate", "tiny", "--seed", "3", "--output-dir", str(tmp_path)])
        capsys.readouterr()
        exit_code = main(
            ["query", "soccer", "--stream", str(tmp_path / "tiny" / "stream.jsonl")]
        )
        assert exit_code == 2

    def test_experiment_table3(self, capsys):
        exit_code = main(["experiment", "table3", "--datasets", "tiny", "--seed", "3"])
        assert exit_code == 0
        assert "Table 3" in capsys.readouterr().out

    def test_experiment_figure7_on_tiny(self, capsys):
        exit_code = main(
            ["experiment", "figure7", "--datasets", "tiny", "--queries", "2", "--seed", "3"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 7" in output
        assert "mttd" in output


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.profile == "tiny"
        assert args.queries == 100
        assert args.algorithm == "mttd"
        assert not args.naive
        assert args.ttl_buckets is None

    def test_serve_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--algorithm", "nope"])

    def test_serve_end_to_end_prints_metrics_report(self, capsys):
        exit_code = main(
            [
                "serve", "--profile", "tiny", "--queries", "10", "--k", "3",
                "--window-hours", "3", "--bucket-minutes", "30", "--eta", "1.0",
                "--workers", "2", "--seed", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "standing queries" in output
        assert "p50" in output and "p99" in output
        assert "re-eval ratio" in output
        assert "snapshot cache" in output
        assert "q00000" in output  # sample standing results are printed

    def test_serve_naive_mode(self, capsys):
        exit_code = main(
            [
                "serve", "--profile", "tiny", "--queries", "5", "--k", "3",
                "--window-hours", "3", "--bucket-minutes", "30", "--eta", "1.0",
                "--naive", "--seed", "3",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "naive maintenance" in output
        assert "re-eval ratio 1.000" in output


class TestBenchCommands:
    def test_bench_parser(self):
        args = build_parser().parse_args(
            ["bench", "run", "micro_query_latency", "--tier", "tiny", "--tag", "micro"]
        )
        assert args.command == "bench"
        assert args.bench_command == "run"
        assert args.names == ["micro_query_latency"]
        assert args.tag == ["micro"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "run", "--tier", "huge"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        output = capsys.readouterr().out
        assert "micro_stream_update" in output
        assert "benchmark(s) registered" in output

    def test_bench_list_tag_filter(self, capsys):
        assert main(["bench", "list", "--tag", "micro"]) == 0
        output = capsys.readouterr().out
        assert "micro_stream_update" in output
        assert "fig7_epsilon_time" not in output

    def test_bench_run_writes_schema_valid_reports(self, tmp_path, capsys):
        import json

        from repro.bench import validate_report_dict

        exit_code = main(
            ["bench", "run", "micro_query_latency", "--tier", "tiny",
             "--output-dir", str(tmp_path), "--seed", "7"]
        )
        assert exit_code == 0
        path = tmp_path / "BENCH_micro_query_latency.json"
        assert path.exists()
        data = json.loads(path.read_text())
        validate_report_dict(data)
        assert data["tier"] == "tiny"
        assert data["seed"] == 7
        assert {entry["name"] for entry in data["scenarios"]} == {
            "topk", "mttd", "mtts", "celf", "sieve",
        }
        output = capsys.readouterr().out
        assert "micro_query_latency" in output

    def test_bench_run_unknown_name(self, capsys):
        with pytest.raises(KeyError):
            main(["bench", "run", "nope"])

    def test_bench_profile_prints_kernel_table(self, capsys):
        exit_code = main(
            ["bench", "profile", "micro_query_latency", "--tier", "tiny",
             "--scenario", "topk", "--kernels", "numpy", "--top", "5"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "micro_query_latency / tiny / topk" in output
        assert "cumulative" in output  # the cProfile section
        assert "kernel backend: numpy" in output
        assert "ranked_merge" in output  # the per-kernel timer table

    def test_bench_profile_unknown_scenario(self, capsys):
        assert main(
            ["bench", "profile", "micro_query_latency", "--scenario", "nope"]
        ) == 2

    def test_bench_profile_rejects_unknown_kernel_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["bench", "profile", "kernel_hotpath", "--kernels", "fortran"]
            )

    def test_bench_run_empty_selection(self, capsys):
        assert main(["bench", "run", "--tag", "no-such-tag"]) == 2

    def test_bench_compare_gates_on_injected_slowdown(self, tmp_path, capsys):
        import copy
        import json

        assert main(
            ["bench", "run", "micro_query_latency", "--tier", "tiny",
             "--output-dir", str(tmp_path / "base")]
        ) == 0
        capsys.readouterr()
        # identical reports: no regression, exit 0.
        assert main(
            ["bench", "compare", str(tmp_path / "base"), str(tmp_path / "base")]
        ) == 0
        assert "no regressions" in capsys.readouterr().out
        # inject a 2x slowdown into every scenario: exit 1.
        slow_dir = tmp_path / "slow"
        slow_dir.mkdir()
        data = json.loads(
            (tmp_path / "base" / "BENCH_micro_query_latency.json").read_text()
        )
        slow = copy.deepcopy(data)
        for scenario in slow["scenarios"]:
            scenario["samples_ms"] = [s * 2 for s in scenario["samples_ms"]]
            for key in ("p50_ms", "p95_ms", "mean_ms", "min_ms", "max_ms"):
                scenario[key] *= 2
        (slow_dir / "BENCH_micro_query_latency.json").write_text(json.dumps(slow))
        assert main(
            ["bench", "compare", str(tmp_path / "base"), str(slow_dir),
             "--tolerance", "0.25", "--min-p50-ms", "0.0"]
        ) == 1
        assert "regression" in capsys.readouterr().out

    def test_bench_compare_missing_path(self, tmp_path, capsys):
        assert main(
            ["bench", "compare", str(tmp_path / "absent"), str(tmp_path / "absent")]
        ) == 2
