"""Tests for the continuous serving engine and its supporting pieces."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.query import KSIRQuery
from repro.core.scoring import ScoringConfig
from repro.core.stream import SocialStream
from repro.datasets.profiles import get_profile
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.service import (
    IncrementalScheduler,
    QueryRegistry,
    ServiceEngine,
    SnapshotCache,
)
from tests.conftest import (
    PAPER_SCORING,
    PAPER_WINDOW_LENGTH,
    build_paper_elements,
    build_paper_topic_model,
    build_processor,
    build_service_engine,
)


def make_query(*weights: float, k: int = 2) -> KSIRQuery:
    return KSIRQuery(k=k, vector=np.array(weights, dtype=float))


def paper_engine(**engine_kwargs) -> ServiceEngine:
    config = ProcessorConfig(
        window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
    )
    processor = build_processor(build_paper_topic_model(), config)
    return build_service_engine(processor, **engine_kwargs)


def replay_paper(engine: ServiceEngine, until: int = 8) -> None:
    by_id = {element.element_id: element for element in build_paper_elements()}
    for time in range(1, until + 1):
        bucket = [by_id[time]] if time in by_id else []
        engine.ingest_bucket(bucket, end_time=time)


class TestSnapshotCache:
    def _processor(self) -> KSIRProcessor:
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = build_processor(build_paper_topic_model(), config)
        processor.process_stream(SocialStream(build_paper_elements()))
        return processor

    def test_same_context_within_a_bucket(self):
        cache = SnapshotCache(self._processor())
        first = cache.context()
        assert cache.context() is first
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalidated_by_ingestion(self):
        processor = self._processor()
        cache = SnapshotCache(processor)
        first = cache.context()
        processor.process_bucket([], end_time=9)
        second = cache.context()
        assert second is not first
        assert cache.misses == 2
        assert cache.version == processor.buckets_processed

    def test_cold_cache_has_no_version(self):
        cache = SnapshotCache(self._processor())
        assert cache.version is None
        assert cache.hit_rate == 0.0


class TestIncrementalScheduler:
    def _registry(self) -> QueryRegistry:
        registry = QueryRegistry()
        registry.register(make_query(1.0, 0.0), query_id="on-0")
        registry.register(make_query(0.0, 1.0), query_id="on-1")
        return registry

    def test_only_affected_queries_planned(self):
        scheduler = IncrementalScheduler(self._registry(), num_topics=8)
        plan = scheduler.plan([1], active_elements=100)
        assert plan.query_ids == ("on-1",)
        assert not plan.full
        assert plan.reason == "incremental"

    def test_pending_queries_always_included(self):
        scheduler = IncrementalScheduler(self._registry(), num_topics=8)
        plan = scheduler.plan([], pending_ids=("on-0",), active_elements=100)
        assert plan.query_ids == ("on-0",)

    def test_pending_ids_no_longer_registered_are_dropped(self):
        scheduler = IncrementalScheduler(self._registry(), num_topics=8)
        plan = scheduler.plan([], pending_ids=("gone",), active_elements=100)
        assert plan.query_ids == ()

    def test_expiry_churn_falls_back_to_full(self):
        scheduler = IncrementalScheduler(
            self._registry(), num_topics=8, expiry_churn_fraction=0.5
        )
        plan = scheduler.plan([], expired_elements=60, active_elements=100)
        assert plan.full
        assert plan.reason == "expiry-churn"
        assert plan.query_ids == ("on-0", "on-1")

    def test_dirty_fraction_falls_back_to_full(self):
        scheduler = IncrementalScheduler(
            self._registry(), num_topics=4, dirty_fraction_fallback=0.75
        )
        plan = scheduler.plan([0, 1, 2], active_elements=100)
        assert plan.full
        assert plan.reason == "dirty-fraction"

    def test_empty_registry_plans_nothing(self):
        scheduler = IncrementalScheduler(QueryRegistry(), num_topics=8)
        plan = scheduler.plan([0, 1], expired_elements=100, active_elements=1)
        assert plan.query_ids == ()
        assert not plan.full


class TestServiceEngineBasics:
    def test_register_validates_vector_dimension(self):
        with paper_engine() as engine:
            with pytest.raises(ValueError):
                engine.register(make_query(0.2, 0.3, 0.5))

    def test_externally_populated_registry_is_adopted(self):
        registry = QueryRegistry()
        registry.register(make_query(0.5, 0.5), query_id="external", algorithm="celf")
        config = ProcessorConfig(
            window_length=PAPER_WINDOW_LENGTH, bucket_length=1, scoring=PAPER_SCORING
        )
        processor = build_processor(build_paper_topic_model(), config)
        with build_service_engine(processor, registry=registry) as engine:
            engine.ingest_bucket([build_paper_elements()[0]], end_time=1)
            result = engine.result("external")
            assert result is not None
            assert result.result.algorithm == "celf"

    def test_register_with_unknown_algorithm_leaves_no_orphan(self):
        with paper_engine() as engine:
            with pytest.raises(ValueError):
                engine.register(make_query(0.5, 0.5), algorithm="bogus")
            assert len(engine.registry) == 0
            # The engine still serves cleanly afterwards.
            engine.register(make_query(0.5, 0.5), query_id="ok")
            engine.ingest_bucket([build_paper_elements()[0]], end_time=1)
            assert engine.result("ok") is not None

    def test_standing_results_match_adhoc_queries(self):
        with paper_engine(max_workers=2) as engine:
            engine.register(make_query(0.5, 0.5), query_id="both")
            engine.register(make_query(1.0, 0.0), query_id="sports")
            replay_paper(engine)

            both = engine.result("both")
            assert both is not None and both.fresh
            adhoc = engine.processor.query([0.5, 0.5], k=2, algorithm="mttd")
            assert set(both.result.element_ids) == set(adhoc.element_ids)
            assert both.result.score == pytest.approx(adhoc.score)

    def test_results_cover_evaluated_queries(self):
        with paper_engine() as engine:
            engine.register(make_query(0.5, 0.5), query_id="a")
            replay_paper(engine)
            engine.register(make_query(1.0, 0.0), query_id="b")
            results = engine.results()
            assert set(results) == {"a"}  # b has not seen a bucket yet
            engine.ingest_bucket([], end_time=9)
            assert set(engine.results()) == {"a", "b"}

    def test_results_are_defensive_copies(self):
        with paper_engine() as engine:
            engine.register(make_query(0.5, 0.5), query_id="guarded")
            replay_paper(engine)
            handed_out = engine.result("guarded")
            assert handed_out is not None
            # Mutating the returned QueryResult must not corrupt the cache.
            handed_out.result.extras["tampered"] = 1.0
            handed_out.result.score = -123.0
            fresh = engine.result("guarded")
            assert "tampered" not in fresh.result.extras
            assert fresh.result.score != -123.0
            # results() hands out copies too.
            engine.results()["guarded"].result.extras["tampered"] = 1.0
            assert "tampered" not in engine.result("guarded").result.extras

    def test_unregister_drops_cached_result(self):
        with paper_engine() as engine:
            engine.register(make_query(0.5, 0.5), query_id="gone")
            replay_paper(engine)
            assert engine.unregister("gone")
            assert engine.result("gone") is None
            assert engine.results() == {}

    def test_ttl_expiry_drops_query_and_result(self):
        with paper_engine() as engine:
            engine.register(make_query(0.5, 0.5), query_id="short", ttl_buckets=3)
            replay_paper(engine, until=5)
            assert "short" not in engine.registry
            assert engine.result("short") is None
            assert engine.metrics.expired_queries == 1

    def test_ttl_of_one_bucket_still_yields_an_answer(self):
        with paper_engine() as engine:
            engine.register(make_query(0.5, 0.5), query_id="once", ttl_buckets=1)
            engine.ingest_bucket([build_paper_elements()[0]], end_time=1)
            # Evaluated on its single TTL bucket and readable during it...
            result = engine.result("once")
            assert result is not None and result.evaluations == 1
            # ...then pruned on the next bucket.
            engine.ingest_bucket([], end_time=2)
            assert "once" not in engine.registry
            assert engine.result("once") is None

    def test_per_query_algorithm_respected(self):
        with paper_engine() as engine:
            engine.register(make_query(0.5, 0.5), query_id="celf", algorithm="celf")
            engine.register(make_query(0.5, 0.5), query_id="mttd", algorithm="mttd")
            replay_paper(engine)
            assert engine.result("celf").result.algorithm == "celf"
            assert engine.result("mttd").result.algorithm == "mttd"

    def test_closed_engine_rejects_ingestion(self):
        engine = paper_engine()
        engine.close()
        with pytest.raises(RuntimeError):
            engine.ingest_bucket([], end_time=1)
        engine.close()  # idempotent

    def test_naive_mode_reevaluates_everything(self):
        with paper_engine(incremental=False) as engine:
            engine.register(make_query(1.0, 0.0))
            engine.register(make_query(0.0, 1.0))
            replay_paper(engine)
            metrics = engine.metrics
            assert metrics.reeval_ratio == 1.0
            assert metrics.evaluations == metrics.opportunities == 16

    def test_serve_stream_equivalent_to_manual_buckets(self):
        with paper_engine() as engine:
            engine.register(make_query(0.5, 0.5), query_id="q")
            engine.serve_stream(SocialStream(build_paper_elements()))
            manual = paper_engine()
            manual.register(make_query(0.5, 0.5), query_id="q")
            replay_paper(manual)
            assert (
                engine.result("q").result.element_ids
                == manual.result("q").result.element_ids
            )
            manual.close()

    def test_report_mentions_key_metrics(self):
        with paper_engine() as engine:
            engine.register(make_query(0.5, 0.5))
            replay_paper(engine)
            report = engine.report()
            assert "standing queries" in report
            assert "p50" in report and "p99" in report
            assert "re-eval ratio" in report
            assert "snapshot cache" in report


class TestIncrementalMaintenance:
    """Incremental vs naive maintenance on a many-topic synthetic stream."""

    PROFILE = replace(
        get_profile("tiny"),
        name="service-test",
        num_elements=260,
        vocabulary_size=800,
        num_topics=48,
        duration=6 * 3600,
    )
    CONFIG = ProcessorConfig(
        window_length=2 * 3600,
        bucket_length=600,
        scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
    )
    NUM_QUERIES = 100

    @pytest.fixture(scope="class")
    def dataset(self):
        return SyntheticStreamGenerator(self.PROFILE, seed=5).generate()

    def _serve(self, dataset, incremental: bool) -> ServiceEngine:
        processor = build_processor(dataset.topic_model, self.CONFIG)
        engine = build_service_engine(processor, incremental=incremental, max_workers=2)
        for i in range(self.NUM_QUERIES):
            engine.register(
                dataset.make_query(k=3, topic=i % self.PROFILE.num_topics),
                query_id=f"monitor-{i:03d}",
            )
        engine.serve_stream(dataset.stream)
        engine.close()
        return engine

    def test_incremental_reevaluates_strictly_fewer_pairs(self, dataset):
        incremental = self._serve(dataset, incremental=True)
        naive = self._serve(dataset, incremental=False)

        assert len(incremental.registry) == self.NUM_QUERIES
        assert incremental.metrics.opportunities == naive.metrics.opportunities
        assert incremental.metrics.evaluations < naive.metrics.evaluations
        assert incremental.metrics.reeval_ratio < 1.0
        assert naive.metrics.reeval_ratio == 1.0

    def test_skipped_queries_carry_staleness_metadata(self, dataset):
        engine = self._serve(dataset, incremental=True)
        results = engine.results()
        assert len(results) == self.NUM_QUERIES
        staleness = [result.staleness_buckets for result in results.values()]
        # Some queries were untouched by the last buckets (served stale)...
        assert max(staleness) > 0
        # ...and staleness counts buckets since the recorded evaluation.
        bucket = engine.processor.buckets_processed
        for result in results.values():
            assert result.staleness_buckets == bucket - result.evaluated_at_bucket
            assert result.fresh == (result.staleness_buckets == 0)

    def test_stale_results_match_their_evaluation_bucket(self, dataset):
        """A served-stale answer equals what a fresh run at its bucket gave.

        Replays the same stream with a naive engine and checks that each
        stale incremental answer matches the naive answer of the bucket it
        was evaluated at — i.e. staleness metadata is truthful.
        """
        incremental = self._serve(dataset, incremental=True)

        processor = build_processor(dataset.topic_model, self.CONFIG)
        with build_service_engine(processor, incremental=False, max_workers=2) as naive:
            for i in range(self.NUM_QUERIES):
                naive.register(
                    dataset.make_query(k=3, topic=i % self.PROFILE.num_topics),
                    query_id=f"monitor-{i:03d}",
                )
            history = {}
            for bucket in dataset.stream.buckets(self.CONFIG.bucket_length):
                naive.ingest_bucket(bucket.elements, bucket.end_time)
                history[naive.processor.buckets_processed] = {
                    query_id: result.result.element_ids
                    for query_id, result in naive.results().items()
                }

        checked = 0
        for query_id, standing_result in incremental.results().items():
            if standing_result.staleness_buckets == 0:
                continue
            reference = history[standing_result.evaluated_at_bucket][query_id]
            assert standing_result.result.element_ids == reference
            checked += 1
        assert checked > 0
