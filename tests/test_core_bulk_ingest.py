"""Equivalence of the batched-ingest fast path with the reference path.

The batched pipeline (``ProfileBuilder.build_many`` →
``RankedListIndex.bulk_update`` → ``KSIRProcessor`` batched
``process_bucket``) must leave exactly the state the element-by-element
discipline produces: same ranked-list membership, scores within 1e-9, same
activity times and dirty-topic sets.
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.core.processor import KSIRProcessor, ProcessorConfig
from repro.core.ranked_list import RankedListIndex
from repro.core.scoring import ProfileBuilder, ScoringConfig
from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.utils.sorted_list import DescendingSortedList
from tests.conftest import build_processor


# ---------------------------------------------------------------------------
# DescendingSortedList bulk operations
# ---------------------------------------------------------------------------


class TestSortedListBulk:
    def test_bulk_insert_equivalent_to_sequential(self):
        rng = random.Random(11)
        for round_index in range(20):
            reference = DescendingSortedList()
            bulk = DescendingSortedList()
            # a pre-existing population, some of which gets superseded.
            for key in range(40):
                score = rng.uniform(0.0, 10.0)
                reference.insert(key, score)
                bulk.insert(key, score)
            batch = [
                (rng.randrange(60), rng.uniform(0.0, 10.0))
                for _ in range(rng.randrange(1, 50))
            ]
            for key, score in batch:
                reference.insert(key, score)
            bulk.bulk_insert(batch)
            assert bulk.items() == reference.items(), f"round {round_index}"
            assert bulk.validate()

    def test_bulk_insert_last_score_wins(self):
        ranked = DescendingSortedList()
        ranked.bulk_insert([(1, 5.0), (2, 3.0), (1, 7.0)])
        assert ranked.score(1) == 7.0
        assert len(ranked) == 2

    def test_bulk_insert_empty_batch_is_noop(self):
        ranked = DescendingSortedList()
        ranked.insert(1, 1.0)
        ranked.bulk_insert([])
        assert ranked.items() == [(1, 1.0)]

    def test_bulk_discard(self):
        rng = random.Random(13)
        reference = DescendingSortedList()
        bulk = DescendingSortedList()
        for key in range(50):
            score = rng.uniform(0.0, 5.0)
            reference.insert(key, score)
            bulk.insert(key, score)
        victims = [3, 7, 7, 99, 12] + list(range(20, 45))
        for key in victims:
            reference.discard(key)
        removed = bulk.bulk_discard(victims)
        assert bulk.items() == reference.items()
        assert set(removed) == ({3, 7, 12} | set(range(20, 45)))
        assert bulk.validate()


# ---------------------------------------------------------------------------
# ProfileBuilder.build_many
# ---------------------------------------------------------------------------


class TestBuildMany:
    def test_matches_scalar_build(self, tiny_dataset):
        builder = ProfileBuilder(
            tiny_dataset.topic_model, ScoringConfig(lambda_weight=0.5, eta=1.0)
        )
        elements = tiny_dataset.stream.elements[:120]
        scalar = [builder.build(element) for element in elements]
        bulk = builder.build_many(elements)
        assert len(scalar) == len(bulk)
        for expected, actual in zip(scalar, bulk):
            assert actual.element_id == expected.element_id
            assert actual.timestamp == expected.timestamp
            assert actual.references == expected.references
            assert actual.topic_probabilities == expected.topic_probabilities
            assert actual.word_weights.keys() == expected.word_weights.keys()
            for topic in expected.word_weights:
                expected_words = expected.word_weights[topic]
                actual_words = actual.word_weights[topic]
                # same words in the same (insertion) order ...
                assert list(actual_words) == list(expected_words)
                # ... with weights within the fast-path tolerance.
                for word_id, weight in expected_words.items():
                    assert actual_words[word_id] == pytest.approx(weight, abs=1e-12)
                assert actual.semantic_scores[topic] == pytest.approx(
                    expected.semantic_scores[topic], abs=1e-12
                )

    def test_empty_bucket(self, tiny_dataset):
        builder = ProfileBuilder(
            tiny_dataset.topic_model, ScoringConfig(lambda_weight=0.5, eta=1.0)
        )
        assert builder.build_many([]) == []

    def test_missing_distribution_raises(self, paper_elements, paper_topic_model):
        builder = ProfileBuilder(paper_topic_model, ScoringConfig())
        stripped = replace(paper_elements[0], topic_distribution=None)
        with pytest.raises(ValueError, match="no topic distribution"):
            builder.build_many([stripped])

    def test_paper_example_profiles(self, paper_topic_model, paper_elements):
        """build_many reproduces the paper's worked-example profiles."""
        builder = ProfileBuilder(
            paper_topic_model, ScoringConfig(lambda_weight=0.5, eta=2.0)
        )
        scalar = [builder.build(element) for element in paper_elements]
        bulk = builder.build_many(paper_elements)
        for expected, actual in zip(scalar, bulk):
            assert actual.semantic_scores == pytest.approx(expected.semantic_scores)


# ---------------------------------------------------------------------------
# RankedListIndex.bulk_update
# ---------------------------------------------------------------------------


def _profiles_for(dataset, count):
    builder = ProfileBuilder(
        dataset.topic_model, ScoringConfig(lambda_weight=0.5, eta=1.0)
    )
    return builder.build_many(dataset.stream.elements[:count])


class TestBulkUpdate:
    def test_bulk_inserts_match_sequential_inserts(self, tiny_dataset):
        profiles = _profiles_for(tiny_dataset, 80)
        config = ScoringConfig(lambda_weight=0.5, eta=1.0)
        topics = tiny_dataset.topic_model.num_topics
        reference = RankedListIndex(topics, config)
        bulk = RankedListIndex(topics, config)
        for profile in profiles:
            reference.insert(profile, activity_time=profile.timestamp)
        bulk.bulk_update(inserts=[(p, p.timestamp) for p in profiles])
        for topic in range(topics):
            assert bulk.items(topic) == reference.items(topic)
        assert bulk.take_dirty_topics() == reference.take_dirty_topics()
        assert bulk.validate()

    def test_bulk_refreshes_match_sequential_refreshes(self, tiny_dataset):
        profiles = _profiles_for(tiny_dataset, 80)
        by_id = {profile.element_id: profile for profile in profiles}
        config = ScoringConfig(lambda_weight=0.5, eta=1.0)
        topics = tiny_dataset.topic_model.num_topics
        rng = random.Random(5)
        reference = RankedListIndex(topics, config)
        bulk = RankedListIndex(topics, config)
        for profile in profiles:
            reference.insert(profile, activity_time=profile.timestamp)
            bulk.insert(profile, activity_time=profile.timestamp)
        refreshes = []
        for profile in rng.sample(profiles, 30):
            followers = {
                p.element_id: p for p in rng.sample(profiles, rng.randrange(0, 6))
            }
            time = profile.timestamp + rng.randrange(0, 1000)
            refreshes.append((profile, followers, time))
        for profile, followers, time in refreshes:
            reference.refresh(profile, followers, activity_time=time)
        bulk.bulk_update(refreshes=refreshes)
        for topic in range(topics):
            reference_items = reference.items(topic)
            bulk_items = bulk.items(topic)
            assert [eid for eid, _ in bulk_items] == [eid for eid, _ in reference_items]
            for (eid, expected), (_, actual) in zip(reference_items, bulk_items):
                assert actual == pytest.approx(expected, abs=1e-9), (topic, eid)
        for profile in by_id.values():
            assert bulk.last_activity(profile.element_id) == reference.last_activity(
                profile.element_id
            )

    def test_bulk_removes_match_sequential_removes(self, tiny_dataset):
        profiles = _profiles_for(tiny_dataset, 60)
        config = ScoringConfig(lambda_weight=0.5, eta=1.0)
        topics = tiny_dataset.topic_model.num_topics
        reference = RankedListIndex(topics, config)
        bulk = RankedListIndex(topics, config)
        for profile in profiles:
            reference.insert(profile, activity_time=profile.timestamp)
            bulk.insert(profile, activity_time=profile.timestamp)
        victims = [profile.element_id for profile in profiles[::3]]
        for element_id in victims:
            reference.remove(element_id)
        bulk.bulk_update(removes=victims)
        for topic in range(topics):
            assert bulk.items(topic) == reference.items(topic)
        for element_id in victims:
            assert element_id not in bulk

    def test_refresh_supersedes_insert_in_one_call(self, tiny_dataset):
        """insert + refresh of the same element == sequential insert-then-refresh."""
        profiles = _profiles_for(tiny_dataset, 10)
        target = profiles[0]
        followers = {profiles[1].element_id: profiles[1]}
        config = ScoringConfig(lambda_weight=0.5, eta=1.0)
        topics = tiny_dataset.topic_model.num_topics
        reference = RankedListIndex(topics, config)
        reference.insert(target, activity_time=target.timestamp)
        reference.refresh(target, followers, activity_time=target.timestamp + 5)
        bulk = RankedListIndex(topics, config)
        bulk.bulk_update(
            inserts=[(target, target.timestamp)],
            refreshes=[(target, followers, target.timestamp + 5)],
        )
        for topic in range(topics):
            reference_items = reference.items(topic)
            bulk_items = bulk.items(topic)
            assert [eid for eid, _ in bulk_items] == [eid for eid, _ in reference_items]
            for (_, expected), (_, actual) in zip(reference_items, bulk_items):
                assert actual == pytest.approx(expected, abs=1e-12)
        assert bulk.last_activity(target.element_id) == target.timestamp + 5


# ---------------------------------------------------------------------------
# End-to-end: batched vs element-by-element process_bucket
# ---------------------------------------------------------------------------


def _replay(dataset, batched: bool, window_length=3 * 3600, bucket_length=900):
    config = ProcessorConfig(
        window_length=window_length,
        bucket_length=bucket_length,
        scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
        batched_ingest=batched,
    )
    processor = build_processor(dataset.topic_model, config)
    processor.process_stream(dataset.stream)
    return processor


def _assert_equivalent(sequential: KSIRProcessor, batched: KSIRProcessor):
    assert batched.elements_processed == sequential.elements_processed
    assert batched.buckets_processed == sequential.buckets_processed
    assert batched.active_count == sequential.active_count
    index_a, index_b = sequential.ranked_lists, batched.ranked_lists
    assert index_b.element_count == index_a.element_count
    assert index_b.total_tuples() == index_a.total_tuples()
    for topic in range(index_a.num_topics):
        items_a = index_a.items(topic)
        items_b = index_b.items(topic)
        assert [eid for eid, _ in items_b] == [eid for eid, _ in items_a], topic
        for (eid, expected), (_, actual) in zip(items_a, items_b):
            assert abs(actual - expected) <= 1e-9, (topic, eid)
    for element_id, _ in index_a.items(0):
        assert index_b.last_activity(element_id) == index_a.last_activity(element_id)
    assert index_b.validate()


class TestBatchedProcessorEquivalence:
    def test_tiny_dataset_equivalence(self, tiny_dataset):
        sequential = _replay(tiny_dataset, batched=False)
        batched = _replay(tiny_dataset, batched=True)
        _assert_equivalent(sequential, batched)
        # dirty-topic accounting agrees as well.
        assert (
            batched.ranked_lists.take_dirty_topics()
            == sequential.ranked_lists.take_dirty_topics()
        )

    def test_reactivation_and_expiry_equivalence(self):
        """A short window forces expiry + archive re-activation on both paths."""
        profile = SyntheticStreamGenerator.from_profile("tiny", seed=23)
        dataset = profile.generate()
        sequential = _replay(dataset, batched=False, window_length=1800,
                             bucket_length=600)
        batched = _replay(dataset, batched=True, window_length=1800,
                          bucket_length=600)
        _assert_equivalent(sequential, batched)

    def test_query_results_identical(self, tiny_dataset):
        sequential = _replay(tiny_dataset, batched=False)
        batched = _replay(tiny_dataset, batched=True)
        query = tiny_dataset.make_query(k=5, topic=1)
        for algorithm in ("topk", "mttd", "celf"):
            result_a = sequential.query(query, algorithm=algorithm, epsilon=0.1)
            result_b = batched.query(query, algorithm=algorithm, epsilon=0.1)
            assert result_b.element_ids == result_a.element_ids, algorithm
            assert result_b.score == pytest.approx(result_a.score, abs=1e-9)

    def test_batched_is_default(self):
        assert ProcessorConfig().batched_ingest is True
