"""Unit and property tests for the lazy max-heap."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.lazy_heap import LazyMaxHeap


class TestBasicOperations:
    def test_empty(self):
        heap = LazyMaxHeap()
        assert len(heap) == 0
        assert heap.max_priority() is None
        with pytest.raises(IndexError):
            heap.peek()
        with pytest.raises(IndexError):
            heap.pop()

    def test_push_and_pop_order(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 3.0)
        heap.push("c", 2.0)
        assert heap.pop() == ("b", 3.0)
        assert heap.pop() == ("c", 2.0)
        assert heap.pop() == ("a", 1.0)
        assert len(heap) == 0

    def test_peek_does_not_remove(self):
        heap = LazyMaxHeap()
        heap.push("a", 5.0)
        assert heap.peek() == ("a", 5.0)
        assert len(heap) == 1

    def test_update_priority_down(self):
        heap = LazyMaxHeap()
        heap.push("a", 5.0)
        heap.push("b", 4.0)
        heap.push("a", 1.0)
        assert heap.pop() == ("b", 4.0)
        assert heap.pop() == ("a", 1.0)

    def test_update_priority_up(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 4.0)
        heap.push("a", 9.0)
        assert heap.pop() == ("a", 9.0)

    def test_remove_makes_entry_stale(self):
        heap = LazyMaxHeap()
        heap.push("a", 5.0)
        heap.push("b", 1.0)
        heap.remove("a")
        assert "a" not in heap
        assert heap.pop() == ("b", 1.0)

    def test_discard_missing_is_noop(self):
        heap = LazyMaxHeap()
        heap.discard("missing")
        assert len(heap) == 0

    def test_priority_lookup(self):
        heap = LazyMaxHeap()
        heap.push("a", 2.5)
        assert heap.priority("a") == 2.5
        with pytest.raises(KeyError):
            heap.priority("missing")

    def test_contains_and_iter(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        assert set(iter(heap)) == {"a", "b"}
        assert "a" in heap and "c" not in heap

    def test_duplicate_same_priority(self):
        heap = LazyMaxHeap()
        heap.push("a", 1.0)
        heap.push("a", 1.0)
        assert heap.pop() == ("a", 1.0)
        assert len(heap) == 0
        assert heap.max_priority() is None


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=20), st.floats(-100, 100)),
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_pop_all_returns_descending_latest_priorities(self, pushes):
        """Popping everything yields the latest priority per key, descending."""
        heap = LazyMaxHeap()
        reference = {}
        for key, priority in pushes:
            heap.push(key, priority)
            reference[key] = priority
        popped = []
        while len(heap):
            popped.append(heap.pop())
        assert {key for key, _ in popped} == set(reference)
        priorities = [priority for _, priority in popped]
        assert priorities == sorted(priorities, reverse=True)
        for key, priority in popped:
            assert priority == reference[key]
