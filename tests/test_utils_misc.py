"""Tests for timing, RNG and validation utilities."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, spawn_rng
from repro.utils.timing import StopWatch, TimingStats
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)


class TestStopWatch:
    def test_measures_elapsed_time(self):
        watch = StopWatch()
        watch.start()
        time.sleep(0.01)
        elapsed = watch.stop()
        assert elapsed >= 0.009
        assert watch.seconds == elapsed
        assert watch.milliseconds == pytest.approx(elapsed * 1000.0)

    def test_context_manager(self):
        with StopWatch() as watch:
            time.sleep(0.005)
        assert watch.seconds >= 0.004

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            StopWatch().stop()


class TestTimingStats:
    def test_empty_stats(self):
        stats = TimingStats(name="empty")
        assert stats.count == 0
        assert stats.mean_ms == 0.0
        assert stats.median_ms == 0.0
        assert stats.max_ms == 0.0
        assert stats.stdev_ms == 0.0

    def test_add_and_aggregate(self):
        stats = TimingStats()
        stats.add(0.001)
        stats.add(0.003)
        assert stats.count == 2
        assert stats.mean_ms == pytest.approx(2.0)
        assert stats.median_ms == pytest.approx(2.0)
        assert stats.max_ms == pytest.approx(3.0)
        assert stats.min_ms == pytest.approx(1.0)
        assert stats.total_ms == pytest.approx(4.0)

    def test_add_ms_and_median_odd(self):
        stats = TimingStats()
        for value in (5.0, 1.0, 3.0):
            stats.add_ms(value)
        assert stats.median_ms == 3.0

    def test_measure_context(self):
        stats = TimingStats()
        with stats.measure():
            time.sleep(0.002)
        assert stats.count == 1
        assert stats.mean_ms >= 1.0

    def test_extend_and_iter(self):
        left = TimingStats()
        left.add_ms(1.0)
        right = TimingStats()
        right.add_ms(2.0)
        left.extend(right)
        assert list(left) == [1.0, 2.0]
        assert len(left) == 2

    def test_summary_is_readable(self):
        stats = TimingStats(name="queries")
        stats.add_ms(1.5)
        text = stats.summary()
        assert "queries" in text and "n=1" in text


class TestRng:
    def test_make_rng_from_seed_is_deterministic(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_make_rng_passthrough(self):
        generator = np.random.default_rng(1)
        assert make_rng(generator) is generator

    def test_derive_seed_depends_on_labels(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_seed_handles_none(self):
        assert derive_seed(None, "x") == derive_seed(None, "x")

    def test_spawn_rng_deterministic(self):
        assert spawn_rng(3, "dataset").random() == spawn_rng(3, "dataset").random()


class TestValidation:
    def test_require_positive(self):
        require_positive(1, "x")
        with pytest.raises(ValueError):
            require_positive(0, "x")
        with pytest.raises(ValueError):
            require_positive(-1, "x")

    def test_require_non_negative(self):
        require_non_negative(0, "x")
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")

    def test_require_probability(self):
        require_probability(0.0, "p")
        require_probability(1.0, "p")
        with pytest.raises(ValueError):
            require_probability(1.1, "p")
        with pytest.raises(ValueError):
            require_probability(-0.1, "p")

    def test_require_in_range_inclusive(self):
        require_in_range(5, "x", 0, 10)
        with pytest.raises(ValueError):
            require_in_range(11, "x", 0, 10)
        with pytest.raises(ValueError):
            require_in_range(-1, "x", 0, 10)

    def test_require_in_range_exclusive(self):
        with pytest.raises(ValueError):
            require_in_range(0, "x", 0, 10, low_inclusive=False)
        with pytest.raises(ValueError):
            require_in_range(10, "x", 0, 10, high_inclusive=False)
        require_in_range(5, "x", 0, 10, low_inclusive=False, high_inclusive=False)
