"""Tests for the effectiveness metrics, kappa, workloads and the user study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.element import SocialElement
from repro.evaluation.kappa import cohen_weighted_kappa
from repro.evaluation.metrics import (
    average_pairwise_similarity,
    coverage_score,
    influence_score,
    quality_ratios,
    reference_count,
    relevance,
    text_similarity,
    topic_similarity,
)
from repro.evaluation.user_study import SimulatedUserStudy
from repro.evaluation.workload import WorkloadGenerator


def make_element(element_id, tokens, topic, references=(), timestamp=1):
    return SocialElement(
        element_id=element_id,
        timestamp=timestamp,
        tokens=tuple(tokens),
        references=tuple(references),
        topic_distribution=np.asarray(topic, dtype=float),
    )


@pytest.fixture()
def small_snapshot():
    """Five candidates on two topics plus two window elements referencing them."""
    candidates = [
        make_element(1, ["goal", "league"], [1.0, 0.0]),
        make_element(2, ["goal", "match"], [0.9, 0.1]),
        make_element(3, ["cloud", "software"], [0.0, 1.0]),
        make_element(4, ["kernel", "software"], [0.1, 0.9]),
        make_element(5, ["league", "derby"], [0.8, 0.2]),
    ]
    window = candidates + [
        make_element(6, ["retweet"], [1.0, 0.0], references=(1, 2), timestamp=2),
        make_element(7, ["reply"], [0.0, 1.0], references=(3,), timestamp=2),
    ]
    return candidates, window


class TestSimilarities:
    def test_topic_similarity(self):
        assert topic_similarity(np.array([1.0, 0.0]), np.array([1.0, 0.0])) == pytest.approx(1.0)
        assert topic_similarity(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0
        assert topic_similarity(None, np.array([1.0])) == 0.0
        assert topic_similarity(np.zeros(2), np.array([1.0, 0.0])) == 0.0

    def test_text_similarity(self):
        assert text_similarity({"a": 1}, {"a": 1}) == pytest.approx(1.0)
        assert text_similarity({"a": 1}, {"b": 1}) == 0.0
        assert text_similarity({}, {"a": 1}) == 0.0
        assert 0.0 < text_similarity({"a": 1, "b": 1}, {"a": 1, "c": 1}) < 1.0

    def test_relevance_uses_topic_vector(self):
        element = make_element(1, ["x"], [0.5, 0.5])
        assert relevance(element, np.array([1.0, 0.0])) == pytest.approx(1 / np.sqrt(2))


class TestCoverage:
    def test_empty_selection_is_zero(self, small_snapshot):
        candidates, _ = small_snapshot
        assert coverage_score([], candidates, np.array([1.0, 0.0])) == 0.0

    def test_coverage_increases_with_better_selection(self, small_snapshot):
        candidates, _ = small_snapshot
        query = np.array([1.0, 0.0])
        narrow = coverage_score([candidates[2]], candidates, query)
        on_topic = coverage_score([candidates[0]], candidates, query)
        assert on_topic > narrow

    def test_coverage_bounded_by_one_when_normalised(self, small_snapshot):
        candidates, _ = small_snapshot
        value = coverage_score(candidates, candidates, np.array([0.5, 0.5]))
        assert 0.0 <= value <= 1.0

    def test_unnormalised_variant_is_larger_or_equal(self, small_snapshot):
        candidates, _ = small_snapshot
        query = np.array([1.0, 0.0])
        normalised = coverage_score([candidates[0]], candidates, query, normalize=True)
        raw = coverage_score([candidates[0]], candidates, query, normalize=False)
        assert raw >= normalised

    def test_selected_elements_do_not_cover_themselves(self, small_snapshot):
        candidates, _ = small_snapshot
        # A selection containing every candidate leaves nothing to cover
        # except the excluded ones; coverage of "everything" uses only others.
        value = coverage_score(candidates, candidates, np.array([1.0, 0.0]))
        assert value == 0.0 or value <= 1.0


class TestInfluence:
    def test_counts_unique_followers(self, small_snapshot):
        _, window = small_snapshot
        raw = influence_score([1, 2], window, normalize=False)
        # Element 6 references both 1 and 2 but is counted once.
        assert raw == 1.0

    def test_normalised_against_top_k(self, small_snapshot):
        _, window = small_snapshot
        value = influence_score([1], window, k=1)
        assert value == pytest.approx(1.0)
        weaker = influence_score([4], window, k=1)
        assert weaker == 0.0

    def test_empty_selection(self, small_snapshot):
        _, window = small_snapshot
        assert influence_score([], window) == 0.0

    def test_reference_count(self, small_snapshot):
        _, window = small_snapshot
        assert reference_count([1, 2, 3], window) == 3
        assert reference_count([5], window) == 0

    def test_no_references_in_window(self):
        window = [make_element(1, ["a"], [1.0])]
        assert influence_score([1], window) == 0.0


class TestQualityRatios:
    def test_ratios_relative_to_reference(self):
        ratios = quality_ratios({"celf": 2.0, "mtts": 1.9, "topk": 1.0})
        assert ratios["celf"] == pytest.approx(1.0)
        assert ratios["mtts"] == pytest.approx(0.95)
        assert ratios["topk"] == pytest.approx(0.5)

    def test_missing_reference_returns_empty(self):
        assert quality_ratios({"mtts": 1.0}) == {}

    def test_average_pairwise_similarity(self):
        elements = [
            make_element(1, ["a"], [1.0, 0.0]),
            make_element(2, ["b"], [1.0, 0.0]),
            make_element(3, ["c"], [0.0, 1.0]),
        ]
        value = average_pairwise_similarity(elements)
        assert 0.0 < value < 1.0
        assert average_pairwise_similarity(elements[:1]) == 0.0


class TestKappa:
    def test_perfect_agreement(self):
        assert cohen_weighted_kappa([1, 2, 3, 4, 5], [1, 2, 3, 4, 5]) == pytest.approx(1.0)

    def test_constant_identical_raters(self):
        assert cohen_weighted_kappa([3, 3, 3], [3, 3, 3]) == 1.0

    def test_total_disagreement_is_negative(self):
        value = cohen_weighted_kappa([1, 1, 5, 5], [5, 5, 1, 1])
        assert value < 0.0

    def test_moderate_agreement_between_zero_and_one(self):
        value = cohen_weighted_kappa([1, 2, 3, 4, 5], [2, 2, 3, 4, 4])
        assert 0.0 < value < 1.0

    def test_linear_weighting_penalises_near_misses_less(self):
        near = cohen_weighted_kappa([1, 2, 3, 4, 5], [2, 3, 4, 5, 5])
        far = cohen_weighted_kappa([1, 2, 3, 4, 5], [5, 4, 5, 1, 1])
        assert near > far

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            cohen_weighted_kappa([1, 2], [1])
        with pytest.raises(ValueError):
            cohen_weighted_kappa([], [])
        with pytest.raises(ValueError):
            cohen_weighted_kappa([0, 1], [1, 2])
        with pytest.raises(ValueError):
            cohen_weighted_kappa([1, 6], [1, 2])
        with pytest.raises(ValueError):
            cohen_weighted_kappa([1, 2], [1, 2], num_categories=1)


class TestWorkloadGenerator:
    def test_invalid_configuration(self, tiny_dataset):
        with pytest.raises(ValueError):
            WorkloadGenerator(tiny_dataset, mode="bogus")
        with pytest.raises(ValueError):
            WorkloadGenerator(tiny_dataset, min_keywords=0)
        with pytest.raises(ValueError):
            WorkloadGenerator(tiny_dataset, min_keywords=3, max_keywords=2)

    def test_generates_requested_number(self, tiny_dataset):
        generator = WorkloadGenerator(tiny_dataset, k=5, seed=1)
        workload = generator.generate(12)
        assert len(workload) == 12
        assert all(query.k == 5 for query in workload)

    def test_keyword_counts_in_range(self, tiny_dataset):
        generator = WorkloadGenerator(tiny_dataset, min_keywords=2, max_keywords=4, seed=2)
        for _ in range(20):
            keywords = generator.sample_keywords()
            assert 2 <= len(keywords) <= 4

    def test_query_times_within_stream_range(self, tiny_dataset):
        generator = WorkloadGenerator(tiny_dataset, seed=3)
        workload = generator.generate(15)
        start, end = tiny_dataset.stream.start_time, tiny_dataset.stream.end_time
        for query in workload:
            assert start <= query.time <= end

    def test_workload_sorted_by_time(self, tiny_dataset):
        workload = WorkloadGenerator(tiny_dataset, seed=4).generate(10)
        times = [query.time for query in workload]
        assert times == sorted(times)

    def test_explicit_times(self, tiny_dataset):
        generator = WorkloadGenerator(tiny_dataset, seed=5)
        workload = generator.generate(3, times=[100, 50, 200])
        assert sorted(query.time for query in workload) == [50, 100, 200]
        with pytest.raises(ValueError):
            generator.generate(3, times=[1, 2])

    def test_topical_mode_uses_topic_words(self, tiny_dataset):
        generator = WorkloadGenerator(tiny_dataset, mode="topical", seed=6)
        keywords = generator.sample_keywords()
        assert all(keyword in tiny_dataset.vocabulary for keyword in keywords)

    def test_uniform_mode(self, tiny_dataset):
        generator = WorkloadGenerator(tiny_dataset, mode="uniform", seed=7)
        workload = generator.generate(5)
        assert len(workload) == 5

    def test_reproducible_with_seed(self, tiny_dataset):
        first = WorkloadGenerator(tiny_dataset, seed=11).generate(5)
        second = WorkloadGenerator(tiny_dataset, seed=11).generate(5)
        for left, right in zip(first, second):
            assert left.keywords == right.keywords
            assert left.time == right.time

    def test_queries_between(self, tiny_dataset):
        workload = WorkloadGenerator(tiny_dataset, seed=12).generate(20)
        start, end = tiny_dataset.stream.start_time, tiny_dataset.stream.end_time
        middle = (start + end) // 2
        subset = workload.queries_between(start, middle)
        assert all(start <= query.time <= middle for query in subset)

    def test_invalid_num_queries(self, tiny_dataset):
        with pytest.raises(ValueError):
            WorkloadGenerator(tiny_dataset, seed=1).generate(0)


class TestSimulatedUserStudy:
    def make_results(self, small_snapshot):
        candidates, _window = small_snapshot
        return {
            "good": [candidates[0], candidates[1], candidates[4]],
            "offtopic": [candidates[2], candidates[3]],
            "empty": [],
        }

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SimulatedUserStudy(evaluators_per_query=1)
        with pytest.raises(ValueError):
            SimulatedUserStudy(noise=-0.1)
        with pytest.raises(ValueError):
            SimulatedUserStudy(rating_scale=1)

    def test_representativeness_truth_prefers_on_topic(self, small_snapshot):
        candidates, _ = small_snapshot
        query = np.array([1.0, 0.0])
        good = SimulatedUserStudy.representativeness_truth(
            [candidates[0], candidates[4]], query, candidates
        )
        bad = SimulatedUserStudy.representativeness_truth(
            [candidates[2], candidates[3]], query, candidates
        )
        assert good > bad

    def test_impact_truth_prefers_referenced(self, small_snapshot):
        candidates, window = small_snapshot
        referenced = SimulatedUserStudy.impact_truth([candidates[0]], window)
        ignored = SimulatedUserStudy.impact_truth([candidates[4]], window)
        assert referenced > ignored
        assert SimulatedUserStudy.impact_truth([], window) == 0.0

    def test_judge_query_produces_ratings_for_each_method(self, small_snapshot):
        candidates, window = small_snapshot
        study = SimulatedUserStudy(evaluators_per_query=3, noise=0.0, seed=1)
        judged = study.judge_query(
            self.make_results(small_snapshot), np.array([1.0, 0.0]), candidates, window
        )
        for method in ("good", "offtopic", "empty"):
            assert len(judged.representativeness[method]) == 3
            assert len(judged.impact[method]) == 3
            assert all(1 <= rating <= 5 for rating in judged.representativeness[method])

    def test_noiseless_evaluators_agree_perfectly(self, small_snapshot):
        candidates, window = small_snapshot
        study = SimulatedUserStudy(evaluators_per_query=3, noise=0.0, seed=2)
        judged = study.judge_query(
            self.make_results(small_snapshot), np.array([1.0, 0.0]), candidates, window
        )
        outcome = study.aggregate([judged])
        assert outcome.representativeness_kappa[1] == pytest.approx(1.0)
        assert outcome.representativeness["good"] > outcome.representativeness["offtopic"]

    def test_aggregate_requires_queries(self):
        with pytest.raises(ValueError):
            SimulatedUserStudy().aggregate([])

    def test_outcome_rows(self, small_snapshot):
        candidates, window = small_snapshot
        study = SimulatedUserStudy(evaluators_per_query=2, noise=0.05, seed=3)
        judged = study.judge_query(
            self.make_results(small_snapshot), np.array([1.0, 0.0]), candidates, window
        )
        outcome = study.aggregate([judged, judged])
        rows = outcome.as_rows()
        assert len(rows) == 3
        assert outcome.num_queries == 2
        assert outcome.evaluators_per_query == 2
