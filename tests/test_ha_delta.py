"""Delta checkpoints (repro.ha.delta): structural diffs and chains.

Two layers of guarantees:

* **diff/apply round trip** — for random nested state trees (dicts, lists,
  scalars, NumPy arrays), ``apply_delta(old, diff_state(old, new))``
  reconstructs ``new`` exactly (hypothesis-backed);
* **chain bit-exactness** — the acceptance criterion of the HA subsystem:
  writing full → delta → delta and folding the chain restores *exactly*
  the state a direct full checkpoint written at the same instant reads
  back from disk, and the deltas are smaller than the fulls.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import CheckpointError, EngineConfig, KSIREngine, read_checkpoint
from repro.core.processor import ProcessorConfig
from repro.core.scoring import ScoringConfig
from repro.ha import CheckpointChain, apply_delta, diff_state
from repro.ha.delta import _SAME, _equal, normalise_state

from tests.conftest import build_reference_stream

NUM_BUCKETS = 12
BUCKET_LENGTH = 2

PROCESSOR = ProcessorConfig(
    window_length=NUM_BUCKETS,
    bucket_length=BUCKET_LENGTH,
    scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
)


def build_stream(seed: int):
    return build_reference_stream(seed, NUM_BUCKETS * BUCKET_LENGTH, 4, 18)


def buckets_of(elements):
    return [
        (elements[start : start + BUCKET_LENGTH],
         elements[start : start + BUCKET_LENGTH][-1].timestamp)
        for start in range(0, len(elements), BUCKET_LENGTH)
    ]


# ---------------------------------------------------------------------------
# diff/apply round trip on random trees
# ---------------------------------------------------------------------------


@st.composite
def random_array(draw):
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    rows = draw(st.integers(min_value=0, max_value=5))
    cols = draw(st.integers(min_value=1, max_value=3))
    if draw(st.booleans()):
        return rng.integers(-5, 5, size=(rows, cols)).astype(np.int64)
    return rng.normal(size=(rows, cols))


scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-5, max_value=5),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet="xyz", max_size=4),
)

trees = st.recursive(
    st.one_of(scalars, random_array()),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(
            st.text(alphabet="abcd", min_size=1, max_size=3), children, max_size=4
        ),
    ),
    max_leaves=12,
)


class TestDiffApply:
    @given(old=trees, new=trees)
    @settings(max_examples=150, deadline=None)
    def test_apply_reconstructs_new_exactly(self, old, new):
        old = normalise_state(old)
        new = normalise_state(new)
        delta = diff_state(old, new)
        assert _equal(apply_delta(old, delta), new)

    @given(tree=trees)
    @settings(max_examples=60, deadline=None)
    def test_identical_trees_diff_to_same(self, tree):
        tree = normalise_state(tree)
        assert diff_state(tree, tree) == _SAME

    def test_sliding_list_reuses_surviving_run(self):
        # The window-archive shape: entries pruned from the front, new
        # buckets appended — the delta must not rewrite the survivors.
        old = [{"id": i, "payload": "x" * 50} for i in range(10)]
        new = old[4:] + [{"id": i, "payload": "x" * 50} for i in range(10, 12)]
        delta = diff_state(old, new)
        assert "__list__" in delta
        inserted = sum(
            len(op[1]) for op in delta["__list__"] if op[0] == "ins"
        )
        assert inserted == 2
        assert apply_delta(old, delta) == new

    def test_equal_length_lists_recurse_per_element(self):
        # The per-shard workers shape: every element changes a little, so
        # positional recursion must beat a wholesale rewrite.
        old = [{"counter": i, "blob": list(range(40))} for i in range(3)]
        new = [{"counter": i + 1, "blob": list(range(40))} for i in range(3)]
        delta = diff_state(old, new)
        assert "__elems__" in delta
        assert apply_delta(old, delta) == new

    def test_array_rows_patch(self):
        rng = np.random.default_rng(7)
        old = rng.normal(size=(100, 4))
        new = old.copy()
        new[17] += 1.0
        new = np.concatenate([new, rng.normal(size=(2, 4))])
        delta = diff_state(old, new)
        assert "__rows__" in delta
        patch = delta["__rows__"]
        assert list(patch["indices"]) == [17]
        assert patch["tail"].shape == (2, 4)
        assert np.array_equal(apply_delta(old, delta), new)

    def test_dict_key_drop_and_add(self):
        old = {"keep": 1, "drop": 2}
        new = {"keep": 1, "add": 3}
        delta = diff_state(old, new)
        applied = apply_delta(old, delta)
        assert applied == new


# ---------------------------------------------------------------------------
# the chain
# ---------------------------------------------------------------------------


def advance(engine, buckets):
    for members, end_time in buckets:
        engine.ingest_bucket(members, end_time)


class TestCheckpointChain:
    def test_fold_is_bit_exact_vs_direct_full_restore(self, tmp_path):
        """full → delta → delta → restore == direct full restore, bit for bit."""
        model, elements = build_stream(seed=11)
        buckets = buckets_of(elements)
        engine = KSIREngine(model, EngineConfig(processor=PROCESSOR))
        chain = CheckpointChain(tmp_path / "chain", full_every=8)

        advance(engine, buckets[:4])
        assert chain.save(engine).endswith("-full")
        advance(engine, buckets[4:8])
        assert chain.save(engine).endswith("-delta")
        advance(engine, buckets[8:])
        assert chain.save(engine).endswith("-delta")

        direct = engine.save(tmp_path / "direct")
        engine.close()

        # Fold from a freshly opened chain (no in-memory cache).
        folded = CheckpointChain(tmp_path / "chain").read_payload().state
        expected = normalise_state(read_checkpoint(direct).state)
        assert _equal(folded, expected)

    def test_deltas_are_smaller_than_fulls(self, tmp_path):
        model, elements = build_stream(seed=3)
        buckets = buckets_of(elements)
        engine = KSIREngine(model, EngineConfig(processor=PROCESSOR))
        chain = CheckpointChain(tmp_path / "chain", full_every=16)
        for index in range(0, NUM_BUCKETS, 2):
            advance(engine, buckets[index : index + 2])
            chain.save(engine)
        engine.close()
        stats = chain.stats()
        assert stats["full_segments"] == 1
        assert stats["delta_segments"] == NUM_BUCKETS // 2 - 1
        assert stats["delta_savings"] > 0.0
        assert stats["mean_delta_bytes"] < stats["mean_full_bytes"]

    def test_full_cadence(self, tmp_path):
        model, elements = build_stream(seed=3)
        buckets = buckets_of(elements)
        engine = KSIREngine(model, EngineConfig(processor=PROCESSOR))
        chain = CheckpointChain(tmp_path / "chain", full_every=3)
        for index in range(0, 12, 2):
            advance(engine, buckets[index : index + 2])
            chain.save(engine)
        engine.close()
        kinds = [segment["kind"] for segment in chain.segments]
        assert kinds == ["full", "delta", "delta", "full", "delta", "delta"]

    def test_engine_load_accepts_chain_directory(self, tmp_path):
        model, elements = build_stream(seed=23)
        buckets = buckets_of(elements)
        uninterrupted = KSIREngine(model, EngineConfig(processor=PROCESSOR))
        advance(uninterrupted, buckets)

        engine = KSIREngine(model, EngineConfig(processor=PROCESSOR))
        chain = CheckpointChain(tmp_path / "chain", full_every=8)
        advance(engine, buckets[:4])
        chain.save(engine)
        advance(engine, buckets[4:8])
        chain.save(engine)
        engine.close()

        # The chain restores its NEWEST folded state (full + delta).
        resumed = KSIREngine.load(tmp_path / "chain")
        assert resumed.buckets_processed == 8
        advance(resumed, buckets[8:])
        assert resumed.elements_processed == uninterrupted.elements_processed
        assert resumed.active_count == uninterrupted.active_count
        uninterrupted.close()
        resumed.close()

    def test_compact_preserves_state_and_drops_segments(self, tmp_path):
        model, elements = build_stream(seed=9)
        buckets = buckets_of(elements)
        engine = KSIREngine(model, EngineConfig(processor=PROCESSOR))
        chain = CheckpointChain(tmp_path / "chain", full_every=8)
        advance(engine, buckets[:4])
        chain.save(engine)
        advance(engine, buckets[4:8])
        chain.save(engine)
        engine.close()

        before = CheckpointChain(tmp_path / "chain").read_payload().state
        old_names = [segment["name"] for segment in chain.segments]
        chain.compact()
        assert len(chain.segments) == 1
        assert chain.segments[0]["kind"] == "full"
        for name in old_names:
            assert not (tmp_path / "chain" / name).exists()
        after = CheckpointChain(tmp_path / "chain").read_payload().state
        assert _equal(before, after)

    def test_empty_chain_rejected(self, tmp_path):
        chain = CheckpointChain(tmp_path / "chain")
        with pytest.raises(CheckpointError, match="empty"):
            chain.read_payload()

    def test_corrupt_manifest_rejected(self, tmp_path):
        directory = tmp_path / "chain"
        directory.mkdir()
        (directory / "CHAIN.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            CheckpointChain(directory)

    def test_foreign_manifest_format_rejected(self, tmp_path):
        directory = tmp_path / "chain"
        directory.mkdir()
        (directory / "CHAIN.json").write_text(json.dumps({"format": "other"}))
        with pytest.raises(CheckpointError, match="format"):
            CheckpointChain(directory)

    def test_is_chain(self, tmp_path):
        assert not CheckpointChain.is_chain(tmp_path)
        model, elements = build_stream(seed=3)
        engine = KSIREngine(model, EngineConfig(processor=PROCESSOR))
        advance(engine, buckets_of(elements)[:2])
        CheckpointChain(tmp_path / "chain").save(engine)
        engine.close()
        assert CheckpointChain.is_chain(tmp_path / "chain")
