# The serving-tier image: `repro-ksir server` behind uvicorn.
#
#   docker build -t repro-ksir-server .
#   docker run -p 8000:8000 repro-ksir-server
#   docker run -p 8000:8000 repro-ksir-server --profile twitter-small --preload
#
# Arguments after the image name are passed straight to `repro-ksir server`,
# so any CLI flag (profile, checkpoint restore, store path, engine tuning)
# works unchanged.  Mount a volume on /data to persist the runtime telemetry
# store and checkpoints across container restarts.

FROM python:3.12-slim AS runtime

ENV PYTHONDONTWRITEBYTECODE=1 \
    PYTHONUNBUFFERED=1 \
    PIP_NO_CACHE_DIR=1

WORKDIR /app

# Install the package with the serving extras (uvicorn et al.).  The source
# tree is small; a single-stage copy keeps the build dependency-free.
COPY pyproject.toml README.md ./
COPY src ./src
RUN pip install ".[server]"

# Telemetry store + checkpoint volume.
RUN mkdir -p /data
VOLUME ["/data"]

EXPOSE 8000

# Liveness probe against the lock-free /healthz endpoint (the slim image
# ships no curl; urllib is always there).  Use /readyz instead for
# orchestrator readiness gates — it also checks shard health.
HEALTHCHECK --interval=30s --timeout=5s --start-period=10s --retries=3 \
    CMD ["python", "-c", \
         "import urllib.request; urllib.request.urlopen('http://127.0.0.1:8000/healthz', timeout=4)"]

ENTRYPOINT ["repro-ksir", "server", "--host", "0.0.0.0", "--port", "8000", \
            "--store-path", "/data/runtime.db"]
CMD ["--profile", "tiny"]
