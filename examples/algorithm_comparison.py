#!/usr/bin/env python3
"""Algorithm comparison: quality / latency / pruning trade-offs on one window.

The paper's Section 5.3 compares CELF, SieveStreaming, Top-k Representative,
MTTS and MTTD.  This example runs all five on the same snapshot and the same
query workload and prints a compact comparison table — a miniature version of
Figures 9–11 that finishes in a few seconds, handy for sanity-checking the
implementation or for demonstrating the trade-offs in a talk.

Run with:  python examples/algorithm_comparison.py
"""

from __future__ import annotations

import numpy as np

from repro import ProcessorConfig, ScoringConfig
from repro.evaluation.workload import WorkloadGenerator
from repro.experiments.reporting import render_table
from repro.experiments.runner import EfficiencyExperiment, prepare_processor

ALGORITHMS = ("celf", "sieve", "topk", "mtts", "mttd")
NUM_QUERIES = 8
K = 10
EPSILON = 0.1


def main() -> None:
    print("=== Preparing the twitter-small window (cached across runs) ===")
    dataset, processor = prepare_processor(
        "twitter-small",
        seed=2019,
        window_length=24 * 3600,
        bucket_length=15 * 60,
        lambda_weight=0.5,
        eta=1.5,
        replay_fraction=0.75,
    )
    print(f"    {processor.active_count} active elements at query time")

    experiment = EfficiencyExperiment(dataset, processor, seed=2019)
    workload = experiment.make_workload(NUM_QUERIES, k=K)
    print(f"    workload: {NUM_QUERIES} keyword queries, k = {K}, ε = {EPSILON}")

    print("\n=== Running all five algorithms on the same workload ===")
    runs = experiment.run(ALGORITHMS, workload, epsilon=EPSILON, k=K)

    celf_score = runs["celf"].mean_score
    rows = []
    for name in ALGORITHMS:
        run = runs[name]
        rows.append(
            [
                name,
                run.mean_time_ms,
                run.mean_score,
                (run.mean_score / celf_score) if celf_score > 0 else 0.0,
                run.mean_evaluation_ratio,
            ]
        )
    print()
    print(
        render_table(
            ["algorithm", "time (ms)", "score", "quality vs CELF", "evaluated fraction"],
            rows,
            title="Algorithm comparison (averages over the workload)",
            precision=4,
        )
    )

    speedup_celf = runs["celf"].mean_time_ms / max(runs["mttd"].mean_time_ms, 1e-9)
    speedup_sieve = runs["sieve"].mean_time_ms / max(runs["mttd"].mean_time_ms, 1e-9)
    print(
        f"\nMTTD is {speedup_celf:.1f}x faster than CELF and {speedup_sieve:.1f}x faster "
        f"than SieveStreaming on this window while keeping "
        f"{100 * runs['mttd'].mean_score / celf_score:.1f}% of CELF's quality."
    )
    print(
        "Top-k Representative is the fastest but its quality degrades because it "
        "ignores word and influence overlaps — the effect grows with k (Figure 11)."
    )

    # A tiny ε sweep to show the MTTS/MTTD sensitivity difference (Figure 7/8).
    print("\n=== ε sensitivity (mean time in ms / quality vs CELF) ===")
    sweep_rows = []
    for epsilon in (0.1, 0.3, 0.5):
        sweep = experiment.run(("mtts", "mttd"), workload, epsilon=epsilon, k=K)
        sweep_rows.append(
            [
                epsilon,
                sweep["mtts"].mean_time_ms,
                sweep["mtts"].mean_score / celf_score,
                sweep["mttd"].mean_time_ms,
                sweep["mttd"].mean_score / celf_score,
            ]
        )
    print(
        render_table(
            ["epsilon", "MTTS ms", "MTTS quality", "MTTD ms", "MTTD quality"],
            sweep_rows,
            precision=4,
        )
    )
    best = max(ALGORITHMS, key=lambda name: runs[name].mean_score)
    assert best in ("celf", "mttd", "mtts"), "unexpected quality ordering"
    print("\nDone.")


if __name__ == "__main__":
    np.set_printoptions(precision=3, suppress=True)
    main()
