#!/usr/bin/env python3
"""Sharded serving: the same standing queries, scaled across shard partitions.

This example walks through the ``repro.cluster`` layer end to end:

1. the stream is partitioned across 4 shards (``load-balanced`` strategy),
   with followers routed to their parents' shards so influence scores stay
   exact;
2. an ad-hoc k-SIR query is answered by scatter-gather — each shard exports
   a bounded candidate pool, the coordinator runs the final submodular
   selection over the merged union — and the answer is checked against a
   single-node processor, element for element;
3. the same ``ServiceEngine`` used for single-node serving runs its standing
   queries transparently on the cluster (``backend=`` seam);
4. ``verify_equivalence`` replays the stream on both execution paths and
   proves the transparency contract on this dataset.

Run with:  python examples/sharded_serving.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import (
    ClusterConfig,
    ClusterCoordinator,
    KSIRProcessor,
    ProcessorConfig,
    ScoringConfig,
    ServiceEngine,
    SyntheticStreamGenerator,
    verify_equivalence,
)
from repro.datasets.profiles import get_profile

PROFILE = replace(
    get_profile("tiny"),
    name="sharded-demo",
    num_elements=800,
    vocabulary_size=1_000,
    num_topics=32,
    duration=12 * 3600,
)

CONFIG = ProcessorConfig(
    window_length=4 * 3600,
    bucket_length=900,
    scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
)

NUM_SHARDS = 4


def main() -> None:
    dataset = SyntheticStreamGenerator(PROFILE, seed=23).generate()

    # -- 1. replay the stream through the cluster --------------------------------
    coordinator = ClusterCoordinator(
        dataset.topic_model,
        CONFIG,
        cluster=ClusterConfig(num_shards=NUM_SHARDS, partitioner="load-balanced"),
    )
    coordinator.process_stream(dataset.stream)
    print(
        f"ingested {coordinator.elements_processed} elements across "
        f"{coordinator.num_shards} shards; {coordinator.active_count} active"
    )
    for stat in coordinator.shard_stats():
        print(
            f"  shard {stat.shard_id}: {stat.home_elements} home + "
            f"{stat.foreign_elements} foreign replicas, "
            f"{stat.active_home} active home elements"
        )

    # -- 2. scatter-gather query, checked against a single node -------------------
    single = KSIRProcessor(dataset.topic_model, CONFIG)
    single.process_stream(dataset.stream)

    query = dataset.make_query(k=5, keywords=["goal", "league", "champions"])
    sharded = coordinator.query(query, algorithm="mttd", epsilon=0.1)
    reference = single.query(query, algorithm="mttd", epsilon=0.1)
    print(f"\nscatter-gather: {sharded.summary()}")
    print(
        f"  merged {sharded.extras['merged_candidates']:.0f} candidates "
        f"(budget {sharded.extras['candidate_budget']:.0f}/shard) from "
        f"{sharded.extras['shards']:.0f} shards"
    )
    assert set(sharded.element_ids) == set(reference.element_ids)
    assert abs(sharded.score - reference.score) <= 1e-9
    print("  matches the single-node answer exactly.")

    # -- 3. standing queries on the cluster, via the same ServiceEngine -----------
    # The backend seam: hand the engine a coordinator instead of a processor
    # and the standing-query loop runs over N shards transparently.
    serving_coordinator = ClusterCoordinator(
        dataset.topic_model,
        CONFIG,
        cluster=ClusterConfig(num_shards=NUM_SHARDS, partitioner="load-balanced"),
    )
    with serving_coordinator, ServiceEngine(serving_coordinator, max_workers=2) as engine:
        for topic in range(0, 12, 2):
            engine.register(dataset.make_query(k=4, topic=topic), algorithm="mttd")
        engine.serve_stream(dataset.stream)
        print(f"\n{engine.report()}")

    # -- 4. the transparency contract, verified -----------------------------------
    report = verify_equivalence(
        dataset.stream,
        dataset.topic_model,
        queries=[dataset.make_query(k=4, topic=topic) for topic in range(3)],
        config=CONFIG,
        cluster=ClusterConfig(num_shards=NUM_SHARDS, backend="serial"),
        algorithms=("mttd", "greedy"),
    )
    print(f"\n{report.summary()}")
    assert report.matched

    coordinator.close()


if __name__ == "__main__":
    main()
