#!/usr/bin/env python3
"""Sharded serving through the unified facade: one engine, N shards.

This example walks the ``repro.api`` facade across every execution
backend:

1. the same :class:`repro.KSIREngine` replays a stream on the ``local``
   and the ``sharded`` backends — switching is one field in
   :class:`repro.EngineConfig`;
2. an ad-hoc k-SIR query is answered by scatter-gather on the sharded
   engine and checked against the local engine, element for element;
3. the ``service`` backend runs standing queries over the same shard
   partitions, transparently;
4. the sharded engine is checkpointed mid-stream with ``engine.save`` and
   resumed with ``KSIREngine.load`` — the warm-restarted engine finishes
   the stream and answers exactly like the uninterrupted one;
5. ``verify_equivalence`` proves the sharding transparency contract on
   this dataset.

Run with:  python examples/sharded_serving.py
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path

from repro import (
    ClusterConfig,
    EngineConfig,
    KSIREngine,
    ProcessorConfig,
    ScoringConfig,
    ServiceConfig,
    SyntheticStreamGenerator,
    verify_equivalence,
)
from repro.datasets.profiles import get_profile

PROFILE = replace(
    get_profile("tiny"),
    name="sharded-demo",
    num_elements=800,
    vocabulary_size=1_000,
    num_topics=32,
    duration=12 * 3600,
)

NUM_SHARDS = 4

CONFIG = EngineConfig(
    backend="sharded",
    processor=ProcessorConfig(
        window_length=4 * 3600,
        bucket_length=900,
        scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
    ),
    cluster=ClusterConfig(num_shards=NUM_SHARDS, partitioner="load-balanced"),
    service=ServiceConfig(max_workers=2),
)


def main() -> None:
    dataset = SyntheticStreamGenerator(PROFILE, seed=23).generate()

    # -- 1. one engine, two backends ----------------------------------------------
    sharded = KSIREngine(dataset.topic_model, CONFIG)
    sharded.process_stream(dataset.stream)
    print(
        f"ingested {sharded.elements_processed} elements across "
        f"{CONFIG.cluster.num_shards} shards; {sharded.active_count} active"
    )
    for stat in sharded.stats()["shards"]:
        print(
            f"  shard {stat['shard_id']}: {stat['home_elements']} home + "
            f"{stat['foreign_elements']} foreign replicas, "
            f"{stat['active_home']} active home elements"
        )

    local = KSIREngine(dataset.topic_model, CONFIG.with_backend("local"))
    local.process_stream(dataset.stream)

    # -- 2. scatter-gather query, checked against the local engine ----------------
    query = dataset.make_query(k=5, keywords=["goal", "league", "champions"])
    answer = sharded.query(query, algorithm="mttd", epsilon=0.1)
    reference = local.query(query, algorithm="mttd", epsilon=0.1)
    print(f"\nscatter-gather: {answer.summary()}")
    print(
        f"  merged {answer.extras['merged_candidates']:.0f} candidates "
        f"(budget {answer.extras['candidate_budget']:.0f}/shard) from "
        f"{answer.extras['shards']:.0f} shards"
    )
    assert set(answer.element_ids) == set(reference.element_ids)
    assert abs(answer.score - reference.score) <= 1e-9
    print("  matches the local answer exactly.")
    local.close()

    # -- 3. standing queries over the shards, same facade -------------------------
    with KSIREngine(dataset.topic_model, CONFIG.with_backend("service")) as serving:
        for topic in range(0, 12, 2):
            serving.register(dataset.make_query(k=4, topic=topic), algorithm="mttd")
        serving.process_stream(dataset.stream)
        print(f"\n{serving.report()}")

    # -- 4. checkpoint mid-stream, restore, finish --------------------------------
    buckets = list(dataset.stream.buckets(CONFIG.processor.bucket_length))
    half = len(buckets) // 2
    partial = KSIREngine(dataset.topic_model, CONFIG)
    for bucket in buckets[:half]:
        partial.ingest_bucket(bucket.elements, bucket.end_time)
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = partial.save(Path(tmp) / "ksir-checkpoint")
        partial.close()
        resumed = KSIREngine.load(checkpoint)
        for bucket in buckets[half:]:
            resumed.ingest_bucket(bucket.elements, bucket.end_time)
        warm = resumed.query(query, algorithm="mttd", epsilon=0.1)
        assert set(warm.element_ids) == set(answer.element_ids)
        assert abs(warm.score - answer.score) <= 1e-9
        print(
            f"\ncheckpointed at bucket {half}, resumed, finished the stream: "
            "warm-restart answer matches the uninterrupted run."
        )
        resumed.close()

    # -- 5. the transparency contract, verified -----------------------------------
    report = verify_equivalence(
        dataset.stream,
        dataset.topic_model,
        queries=[dataset.make_query(k=4, topic=topic) for topic in range(3)],
        config=CONFIG.processor,
        cluster=ClusterConfig(num_shards=NUM_SHARDS, backend="serial"),
        algorithms=("mttd", "greedy"),
    )
    print(f"\n{report.summary()}")
    assert report.matched

    sharded.close()


if __name__ == "__main__":
    main()
