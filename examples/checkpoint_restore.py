#!/usr/bin/env python3
"""Checkpoint/restore walkthrough: warm-restart a k-SIR engine mid-stream.

The streaming model of the paper implies long-lived engines: the sliding
window, the per-topic ranked lists and (when serving) the standing-query
state accumulate over hours of stream time, so losing the process means
re-ingesting a whole window of history.  ``KSIREngine.save`` persists
the complete execution state to a versioned checkpoint directory and
``KSIREngine.load`` resumes ingest exactly where it stopped, on any
execution backend.

The walkthrough (used as the CI checkpoint smoke test):

1. serve standing queries over half a stream, checkpoint, close;
2. restore from disk into a fresh engine and finish the stream;
3. compare against an uninterrupted run — ranked lists agree within
   1e-9 and the standing results match query for query.

Run with:  python examples/checkpoint_restore.py [checkpoint-dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import (
    EngineConfig,
    KSIREngine,
    ProcessorConfig,
    ScoringConfig,
    ServiceConfig,
    SyntheticStreamGenerator,
)

CONFIG = EngineConfig(
    backend="service",
    processor=ProcessorConfig(
        window_length=3 * 3600,
        bucket_length=900,
        scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
    ),
    service=ServiceConfig(max_workers=2),
)


def build_engine(dataset) -> KSIREngine:
    engine = KSIREngine(dataset.topic_model, CONFIG)
    for topic in range(4):
        engine.register(dataset.make_query(k=4, topic=topic), algorithm="mttd")
    return engine


def main(checkpoint_dir: Path) -> None:
    dataset = SyntheticStreamGenerator.from_profile("tiny", seed=42).generate()
    buckets = list(dataset.stream.buckets(CONFIG.processor.bucket_length))
    half = len(buckets) // 2

    # -- 1. serve half the stream, checkpoint, shut down --------------------------
    engine = build_engine(dataset)
    for bucket in buckets[:half]:
        engine.ingest_bucket(bucket.elements, bucket.end_time)
    path = engine.save(checkpoint_dir)
    print(
        f"checkpointed after {engine.buckets_processed} buckets "
        f"({engine.active_count} active elements) to {path}"
    )
    engine.close()

    # -- 2. warm restart from disk, finish the stream ------------------------------
    resumed = KSIREngine.load(path)
    print(
        f"restored: backend={resumed.backend_name}, "
        f"{resumed.elements_processed} elements already ingested, "
        f"{len(resumed.results())} standing answers carried over"
    )
    for bucket in buckets[half:]:
        resumed.ingest_bucket(bucket.elements, bucket.end_time)

    # -- 3. compare with an uninterrupted run --------------------------------------
    uninterrupted = build_engine(dataset)
    uninterrupted.process_stream(dataset.stream)

    warm, cold = resumed.results(), uninterrupted.results()
    assert warm.keys() == cold.keys()
    for query_id in cold:
        a, b = warm[query_id].result, cold[query_id].result
        assert a.element_ids == b.element_ids, query_id
        assert abs(a.score - b.score) <= 1e-9, query_id
    query = dataset.make_query(k=5, topic=1)
    a = resumed.query(query, algorithm="mttd", epsilon=0.1)
    b = uninterrupted.query(query, algorithm="mttd", epsilon=0.1)
    assert a.element_ids == b.element_ids
    assert abs(a.score - b.score) <= 1e-9
    print(
        f"warm restart matches the uninterrupted run: "
        f"{len(cold)} standing answers and an ad-hoc query agree "
        f"(score {a.score:.6f})"
    )
    resumed.close()
    uninterrupted.close()


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(Path(sys.argv[1]))
    else:
        with tempfile.TemporaryDirectory() as tmp:
            main(Path(tmp) / "ksir-checkpoint")
