#!/usr/bin/env python3
"""Breaking-news dashboard: continuous k-SIR queries over a live window.

This example mimics the paper's motivating scenario — a dashboard that keeps
showing the most *representative* recent posts for a handful of standing
topics while the stream flows.  Every simulated "hour" the dashboard:

* ingests the new bucket of posts (window slide + ranked-list maintenance);
* re-runs one standing k-SIR query per tracked topic with MTTD;
* prints the refreshed panel, showing how trending content replaces stale
  content as the sliding window moves.

It also contrasts the k-SIR panel against a plain top-k relevance panel
(the paper's REL baseline) for one of the topics, illustrating the coverage
and influence difference that motivates the k-SIR query.

Run with:  python examples/breaking_news_dashboard.py
"""

from __future__ import annotations

from typing import Dict, List

from repro import (
    EngineConfig,
    KSIREngine,
    KSIRProcessor,
    ProcessorConfig,
    ScoringConfig,
    SyntheticStreamGenerator,
)
from repro.evaluation.metrics import coverage_score, influence_score
from repro.search.base import SearchRequest
from repro.search.relevance import TopicRelevanceSearch

#: Topics the dashboard tracks (indices into the generated topic model).
TRACKED_TOPICS = (0, 1, 2)
#: Number of posts shown per panel.
PANEL_SIZE = 4
#: How often the dashboard refreshes, in stream seconds (1 simulated hour).
REFRESH_INTERVAL = 3600


def refresh_panel(
    processor: KSIRProcessor, dataset, topic: int
) -> Dict[str, object]:
    """Run the standing query of one topic and collect the panel rows."""
    query = dataset.make_query(k=PANEL_SIZE, topic=topic)
    result = processor.query(query, algorithm="mttd", epsilon=0.1)
    rows: List[str] = []
    for element in processor.result_elements(result):
        followers = processor.window.follower_count(element.element_id)
        rows.append(f"e{element.element_id} ({followers} refs): " + " ".join(element.tokens[:7]))
    return {"query": query, "result": result, "rows": rows}


def main() -> None:
    print("=== Breaking-news dashboard over a Reddit-like stream ===\n")
    dataset = SyntheticStreamGenerator.from_profile("reddit-small", seed=7).generate()
    config = ProcessorConfig(
        window_length=12 * 3600,
        bucket_length=REFRESH_INTERVAL,
        scoring=ScoringConfig(lambda_weight=0.5, eta=2.0),
    )
    engine = KSIREngine(dataset.topic_model, EngineConfig(processor=config))
    # The dashboard reads window internals for display; they live one layer
    # below the facade, on the local backend's processor.
    processor = engine.backend.processor
    topic_names = {topic: dataset.topic_names[topic] for topic in TRACKED_TOPICS}
    print("Tracked topics: " + ", ".join(f"{t} ({name})" for t, name in topic_names.items()))

    refreshes = 0
    for bucket in dataset.stream.buckets(config.bucket_length):
        engine.ingest_bucket(bucket.elements, bucket.end_time)
        if processor.active_count == 0:
            continue
        refreshes += 1
        # Print the dashboard only every 8 hours to keep the output short.
        if refreshes % 8 != 0:
            continue
        hour = (bucket.end_time - dataset.stream.start_time) / 3600.0
        print(f"\n----- dashboard refresh at stream hour {hour:5.1f} "
              f"({processor.active_count} active posts) -----")
        for topic in TRACKED_TOPICS:
            panel = refresh_panel(processor, dataset, topic)
            result = panel["result"]
            print(
                f"  [{topic_names[topic]}] score={result.score:.3f} "
                f"answered in {result.elapsed_ms:.1f} ms "
                f"(evaluated {result.evaluated_elements}/{result.active_elements} posts)"
            )
            for row in panel["rows"]:
                print(f"      {row}")

    # ------------------------------------------------------------------ contrast
    print("\n=== k-SIR panel vs plain topic-relevance panel (final window) ===")
    topic = TRACKED_TOPICS[0]
    query = dataset.make_query(k=PANEL_SIZE, topic=topic)
    candidates = list(processor.window.active_elements())
    window_elements = [processor.window.get(eid) for eid in processor.window.window_ids()]

    ksir_result = processor.query(query, algorithm="mttd")
    ksir_elements = list(processor.result_elements(ksir_result))

    rel_ids = TopicRelevanceSearch().search(
        SearchRequest(
            elements=candidates, keywords=query.keywords,
            query_vector=query.vector, k=PANEL_SIZE,
        )
    )
    by_id = {element.element_id: element for element in candidates}
    rel_elements = [by_id[eid] for eid in rel_ids]

    for label, selected, ids in (
        ("k-SIR (MTTD)", ksir_elements, ksir_result.element_ids),
        ("top-k relevance (REL)", rel_elements, rel_ids),
    ):
        coverage = coverage_score(selected, candidates, query.vector)
        influence = influence_score(ids, window_elements, k=PANEL_SIZE)
        print(f"\n  {label}: coverage={coverage:.3f} influence={influence:.3f}")
        for element in selected:
            print(f"      e{element.element_id}: " + " ".join(element.tokens[:7]))

    print(
        "\nThe k-SIR panel covers more distinct aspects of the topic and picks "
        "posts that were actually referenced inside the window, which is exactly "
        "the effect the paper's Table 6 quantifies."
    )


if __name__ == "__main__":
    main()
