#!/usr/bin/env python3
"""Academic citation monitor: k-SIR over a citation stream with a trained LDA.

The paper's AMiner experiment treats academic papers as social elements whose
references are citations.  This example reproduces that setting end to end —
including the part the other examples skip: it *trains* the topic model from
the corpus with the library's own collapsed-Gibbs LDA instead of using the
generator's ground-truth oracle, then infers topic vectors for every paper at
ingestion time, exactly like a deployment that starts from raw text would.

Pipeline:

1. generate an AMiner-like stream (long documents, dense citations);
2. train LDA on a prefix of the corpus (the paper retrains periodically and
   otherwise treats the model as stable);
3. replay the stream with topic inference enabled;
4. answer "literature survey" queries: for a research-area keyword set,
   retrieve the k papers that best cover the area and are highly cited within
   the recent window — and show who cites them.

Run with:  python examples/academic_citation_monitor.py
"""

from __future__ import annotations

from repro import (
    EngineConfig,
    KSIREngine,
    ProcessorConfig,
    ScoringConfig,
    SyntheticStreamGenerator,
    TopicInferencer,
)
from repro.core.element import SocialElement
from repro.core.stream import SocialStream


def strip_ground_truth(elements) -> SocialStream:
    """Drop the generator's ground-truth topic vectors (we infer our own)."""
    stripped = [
        SocialElement(
            element_id=element.element_id,
            timestamp=element.timestamp,
            tokens=element.tokens,
            references=element.references,
            author=element.author,
        )
        for element in elements
    ]
    return SocialStream(stripped)


def main() -> None:
    print("=== 1. Generating an AMiner-like citation stream ===")
    dataset = SyntheticStreamGenerator.from_profile("aminer-small", seed=11).generate()
    stats = dataset.statistics()
    print(
        f"    {int(stats['num_elements'])} papers, avg {stats['average_length']:.1f} words, "
        f"avg {stats['average_references']:.2f} citations per paper"
    )

    print("\n=== 2. Training LDA on a corpus prefix (collapsed Gibbs) ===")
    num_topics = 12
    # Train on a prefix of the corpus — the paper likewise trains the topic
    # model offline and treats it as stable while the stream flows.
    from repro.topics.lda import LatentDirichletAllocation
    from repro.topics.vocabulary import Vocabulary

    prefix = [list(element.tokens) for element in dataset.stream.elements[:1200]]
    vocabulary = Vocabulary.from_documents(prefix).pruned(min_document_frequency=2)
    model = LatentDirichletAllocation(
        vocabulary, num_topics, iterations=25, burn_in=8, seed=11
    )
    model.fit(prefix)
    print(f"    trained {num_topics} topics on {len(prefix)} papers; a few of them:")
    for topic in range(3):
        print(f"      topic {topic}: " + ", ".join(model.top_words(topic, 6)))

    print("\n=== 3. Replaying the citation stream with topic inference ===")
    config = ProcessorConfig(
        window_length=36 * 3600,
        bucket_length=3600,
        scoring=ScoringConfig(lambda_weight=0.5, eta=4.0),
    )
    inferencer = TopicInferencer(model, alpha=0.05, sparsity_threshold=0.05)
    engine = KSIREngine(model, EngineConfig(processor=config), inferencer=inferencer)
    engine.process_stream(strip_ground_truth(dataset.stream))
    processor = engine.backend.processor  # window internals, for display
    print(
        f"    {processor.active_count} active papers in the last "
        f"{config.window_length // 3600}h window"
    )

    print("\n=== 4. Literature-survey queries ===")
    # Build one survey query per discovered research area: the keywords are
    # the area's top LDA words (what a user would type for that area).
    surveys = {
        f"area #{topic} ({', '.join(model.top_words(topic, 2))})": model.top_words(topic, 4)
        for topic in (0, 1)
    }
    for survey_name, keywords in surveys.items():
        result = engine.query_keywords(keywords, k=5, algorithm="mttd", epsilon=0.1)
        print(
            f"\n  Survey '{survey_name}' (keywords: {', '.join(keywords)}) — "
            f"score {result.score:.3f}, {result.elapsed_ms:.1f} ms"
        )
        for element in processor.result_elements(result):
            citers = processor.window.followers_of(element.element_id)
            title = " ".join(element.tokens[:9])
            print(f"      paper e{element.element_id}: {title}…")
            if citers:
                cited_by = ", ".join(f"e{citer}" for citer in citers[:5])
                suffix = "…" if len(citers) > 5 else ""
                print(f"          cited in-window by: {cited_by}{suffix}")

    print(
        "\nEach survey answer balances covering the area's vocabulary (semantic "
        "score) with picking papers that recent work actually cites (influence "
        "score), which is the k-SIR objective of Eq. 1–2 in the paper."
    )


if __name__ == "__main__":
    main()
