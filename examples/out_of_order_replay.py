#!/usr/bin/env python3
"""Out-of-order replay walkthrough: event-time ingest vs. in-order replay.

Real feeds do not arrive sorted.  ``repro.streams`` accepts raw arrivals,
holds them in a bounded reordering buffer, and seals each bucket only once
the watermark (high-water mark minus the lateness horizon) has passed its
end time — so the execution backends still see the strictly ordered
buckets they require.

The walkthrough (used as the CI streams smoke test):

1. generate a synthetic stream and scramble it with seeded disorder
   (20% of elements delayed by up to two buckets);
2. ingest the scrambled arrivals through ``KSIREngine.ingest`` with
   ``allowed_lateness`` matching the disorder bound;
3. replay the same stream in order through the classic bucket path;
4. compare: no drops, the same bucket grid, and a panel of queries that
   agrees within 1e-9 — then show what an under-provisioned lateness
   budget does instead (late data counted and dropped, never misfiled).

Run with:  python examples/out_of_order_replay.py
"""

from __future__ import annotations

from repro import (
    EngineConfig,
    KSIREngine,
    ProcessorConfig,
    ScoringConfig,
    StreamConfig,
    SyntheticStreamGenerator,
    inject_disorder,
)

MAX_DELAY_BUCKETS = 2
DISORDER = 0.20

PROCESSOR = ProcessorConfig(
    window_length=3 * 3600,
    bucket_length=900,
    scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
)


def main() -> None:
    dataset = SyntheticStreamGenerator.from_profile("tiny", seed=7).generate()
    elements = dataset.stream.elements
    arrivals = inject_disorder(
        elements,
        bucket_length=PROCESSOR.bucket_length,
        max_delay_buckets=MAX_DELAY_BUCKETS,
        fraction=DISORDER,
        seed=7,
    )
    displaced = sum(1 for a, b in zip(arrivals, elements) if a.element_id != b.element_id)
    print(
        f"stream: {len(elements)} elements; disorder injection displaced "
        f"{displaced} of them by up to {MAX_DELAY_BUCKETS} buckets"
    )

    # -- 1. event-time ingest of the scrambled arrivals ----------------------------
    disordered = KSIREngine(
        dataset.topic_model,
        EngineConfig(
            processor=PROCESSOR,
            streams=StreamConfig(allowed_lateness=MAX_DELAY_BUCKETS),
        ),
    )
    disordered.ingest(arrivals)
    disordered.ingest_flush()
    metrics = disordered.stream_metrics()
    print(
        f"event-time ingest: {metrics.buckets_sealed} buckets sealed, "
        f"{metrics.late_events} late arrivals absorbed, "
        f"{metrics.dropped_late} dropped, "
        f"watermark lag p95 = {metrics.watermark_lag_p95:.0f}s"
    )
    assert metrics.dropped_late == 0
    assert metrics.pending_events == 0

    # -- 2. classic in-order replay of the same stream -----------------------------
    ordered = KSIREngine(dataset.topic_model, EngineConfig(processor=PROCESSOR))
    ordered.process_stream(dataset.stream)
    assert disordered.buckets_processed == ordered.buckets_processed
    assert disordered.current_time == ordered.current_time

    # -- 3. both engines answer identically ----------------------------------------
    num_topics = dataset.topic_model.num_topics
    for topic in range(4):
        query = dataset.make_query(k=5, topic=topic % num_topics)
        a = disordered.query(query, algorithm="mttd", epsilon=0.1)
        b = ordered.query(query, algorithm="mttd", epsilon=0.1)
        assert a.element_ids == b.element_ids, f"topic {topic}"
        assert abs(a.score - b.score) <= 1e-9, f"topic {topic}"
    print(
        f"disordered ingest matches the in-order replay: "
        f"{disordered.buckets_processed} buckets, 4 queries agree within 1e-9"
    )
    disordered.close()
    ordered.close()

    # -- 4. what an under-provisioned lateness budget looks like --------------------
    strict = KSIREngine(
        dataset.topic_model,
        EngineConfig(processor=PROCESSOR, streams=StreamConfig(allowed_lateness=0)),
    )
    strict.ingest(arrivals)
    strict.ingest_flush()
    strict_metrics = strict.stream_metrics()
    print(
        f"with allowed_lateness=0 the same feed drops "
        f"{strict_metrics.dropped_late} too-late elements "
        f"(ksir_streams_dropped_late is the gauge to alert on)"
    )
    assert strict_metrics.dropped_late > 0
    strict.close()


if __name__ == "__main__":
    main()
