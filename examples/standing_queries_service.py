#!/usr/bin/env python3
"""Standing-query serving: many users, one shared window, incremental upkeep.

This example drives the ``repro.service`` engine the way a deployment would:
a population of users registers standing k-SIR queries (topic monitors with
different algorithms, ε values and TTLs), the social stream is replayed
bucket by bucket, and the engine keeps every standing result current while
re-evaluating only the queries whose topic support actually changed.

Along the way it shows:

* per-query options — a fast MTTD monitor, a quality-focused CELF monitor
  and a short-lived TTL query that ages out of the registry;
* staleness metadata — cached results report how many buckets ago they were
  computed (0 = fresh, >0 = provably unaffected since);
* the service metrics report — p50/p99 evaluation latency, sustained
  pairs/sec, result/snapshot cache hit rates and the re-eval ratio.

Run with:  python examples/standing_queries_service.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import (
    EngineConfig,
    KSIREngine,
    ProcessorConfig,
    ScoringConfig,
    ServiceConfig,
    SyntheticStreamGenerator,
)
from repro.datasets.profiles import get_profile

#: A medium-sized stream with enough topics that most buckets leave most
#: standing queries untouched (the incremental regime).
PROFILE = replace(
    get_profile("tiny"),
    name="service-demo",
    num_elements=900,
    vocabulary_size=1_000,
    num_topics=48,
    duration=12 * 3600,
)

#: One standing topic monitor per user; users 0..NUM_MONITORS-1 watch topics
#: round-robin.
NUM_MONITORS = 30


def main() -> None:
    dataset = SyntheticStreamGenerator(PROFILE, seed=11).generate()
    config = EngineConfig(
        backend="service",
        processor=ProcessorConfig(
            window_length=4 * 3600,
            bucket_length=900,
            scoring=ScoringConfig(lambda_weight=0.5, eta=1.0),
        ),
        service=ServiceConfig(max_workers=4),
    )

    with KSIREngine(dataset.topic_model, config) as engine:
        # A population of topic monitors with mixed per-query options.
        for user in range(NUM_MONITORS):
            topic = user % PROFILE.num_topics
            if user % 3 == 0:
                engine.register(
                    dataset.make_query(k=4, topic=topic),
                    query_id=f"celf-user{user}",
                    algorithm="celf",
                )
            else:
                engine.register(
                    dataset.make_query(k=4, topic=topic),
                    query_id=f"mttd-user{user}",
                    algorithm="mttd",
                    epsilon=0.1,
                )
        # A breaking-story watch that expires after two simulated hours.
        engine.register(
            dataset.make_query(k=3, keywords=["goal", "league", "champions"]),
            query_id="breaking-soccer",
            ttl_buckets=8,
        )

        engine.process_stream(dataset.stream)

        print(engine.report())
        print()
        print("sample standing results (freshest first):")
        ordered = sorted(
            engine.results().items(), key=lambda item: item[1].staleness_buckets
        )
        for query_id, standing_result in ordered[:6]:
            result = standing_result.result
            print(
                f"  {query_id:<14} |S|={len(result)} score={result.score:.3f} "
                f"algorithm={result.algorithm} stale={standing_result.staleness_buckets} "
                f"buckets (evaluated {standing_result.evaluations}x)"
            )
        registry = engine.service_engine.registry
        assert "breaking-soccer" not in registry, "TTL query should have aged out"
        print("\nbreaking-soccer aged out of the registry after its TTL, as configured.")


if __name__ == "__main__":
    main()
