"""End-to-end smoke test of a running `repro-ksir server` instance.

Drives a live server over real sockets with the bundled stdlib clients
(no third-party HTTP or WebSocket library needed): registers a standing
query, subscribes over WebSocket, ingests one real bucket of the tiny
profile's stream, and asserts the delta push plus the Prometheus
exposition.  CI boots `repro-ksir server --profile tiny` and runs this
against it; it works the same against a uvicorn- or stdlib-served
instance.

Usage::

    repro-ksir server --profile tiny --port 8000 &
    python examples/server_smoke.py --port 8000
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

from repro.datasets.synthetic import SyntheticStreamGenerator
from repro.server.json_codec import element_to_json
from repro.server.ws_client import HttpClient, WebSocketClient


async def wait_until_up(host: str, port: int, deadline_s: float = 30.0) -> None:
    """Poll ``/health`` until the server answers (or the deadline passes)."""
    started = time.monotonic()
    while True:
        try:
            async with HttpClient(host, port) as client:
                response = await client.get("/health")
            if response.status == 200:
                return
        except OSError:
            pass
        if time.monotonic() - started > deadline_s:
            raise TimeoutError(f"server on {host}:{port} never became healthy")
        await asyncio.sleep(0.5)


async def smoke(host: str, port: int, profile: str, seed: int) -> None:
    await wait_until_up(host, port)
    dataset = SyntheticStreamGenerator.from_profile(profile, seed=seed).generate()
    num_topics = dataset.topic_model.num_topics
    bucket_length = 900
    buckets = iter(dataset.stream.buckets(bucket_length))

    async with HttpClient(host, port) as client:
        health = await client.get("/health")
        assert health.json()["backend"] == "service", health.body

        vector = [0.0] * num_topics
        vector[0] = 1.0
        created = await client.post(
            "/queries", {"vector": vector, "k": 5, "query_id": "smoke"}
        )
        assert created.status == 201, created.body
        listing = await client.get("/queries")
        assert listing.json()["count"] >= 1, listing.body

        ws = await WebSocketClient.connect(host, port, "/ws/queries/smoke")
        try:
            snapshot = await ws.recv_json(timeout=10)
            assert snapshot["type"] == "snapshot", snapshot

            # Replay real buckets until one re-evaluates the standing
            # query; the freshly registered query is pending, so the very
            # first bucket evaluates it.
            delta = None
            for bucket in buckets:
                payload = {
                    "end_time": int(bucket.end_time),
                    "elements": [element_to_json(e) for e in bucket.elements],
                }
                ingested = await client.post("/ingest/bucket", payload)
                assert ingested.status == 200, ingested.body
                if "smoke" in ingested.json()["updated"]:
                    delta = await ws.recv_json(timeout=10)
                    break
            assert delta is not None, "no bucket updated the standing query"
            assert delta["type"] == "delta", delta
            assert delta["query_id"] == "smoke", delta
        finally:
            await ws.close()

        metrics = await client.get("/metrics")
        assert metrics.status == 200
        body = metrics.body.decode()
        assert "ksir_http_requests_total" in body
        assert "ksir_ws_sessions_total" in body

        telemetry = await client.get("/telemetry")
        assert telemetry.json()["push"]["pushes"] >= 1, telemetry.body

    print("server smoke OK: register + WS delta push + metrics exposition")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8000)
    parser.add_argument("--profile", default="tiny")
    parser.add_argument("--seed", type=int, default=2019)
    args = parser.parse_args()
    asyncio.run(smoke(args.host, args.port, args.profile, args.seed))
    return 0


if __name__ == "__main__":
    sys.exit(main())
