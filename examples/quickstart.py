#!/usr/bin/env python3
"""Quickstart: generate a social stream, replay it, and ask k-SIR queries.

This is the smallest end-to-end tour of the library:

1. generate a synthetic Twitter-like stream (the stand-in for the paper's
   crawls) together with its topic-model oracle;
2. replay the stream through the :class:`repro.KSIREngine` facade, which
   maintains the sliding window, the active set and the per-topic ranked
   lists (the ``local`` execution backend — swap one config field for a
   sharded cluster or a standing-query service);
3. issue a keyword query, which is converted into a query vector over the
   topic space (the paper's query-by-keyword transformation);
4. answer it with MTTD (the paper's best algorithm) and compare against the
   exact-ish CELF baseline and a plain top-k ranking.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    EngineConfig,
    KSIREngine,
    LocalBackend,
    ProcessorConfig,
    ScoringConfig,
    SyntheticStreamGenerator,
)


def main() -> None:
    # ------------------------------------------------------------------ data
    print("=== 1. Generating a synthetic social stream (twitter-small) ===")
    generator = SyntheticStreamGenerator.from_profile("twitter-small", seed=2019)
    dataset = generator.generate()
    stats = dataset.statistics()
    print(
        f"    {int(stats['num_elements'])} elements, "
        f"{int(stats['vocabulary_size'])} distinct words, "
        f"avg length {stats['average_length']:.1f}, "
        f"avg references {stats['average_references']:.2f}, "
        f"{int(stats['num_topics'])} topics"
    )

    # ---------------------------------------------------------------- engine
    print("\n=== 2. Replaying the stream through the k-SIR engine ===")
    config = EngineConfig(
        backend="local",                      # or "sharded" / "service"
        processor=ProcessorConfig(
            window_length=24 * 3600,          # T = 24 hours, the paper's default
            bucket_length=15 * 60,            # L = 15 minutes
            scoring=ScoringConfig(lambda_weight=0.5, eta=1.5),
        ),
    )
    engine = KSIREngine(dataset.topic_model, config)
    engine.process_stream(dataset.stream)
    print(
        f"    processed {engine.elements_processed} elements in "
        f"{engine.buckets_processed} buckets; "
        f"{engine.active_count} active elements in the current window"
    )
    backend = engine.backend
    assert isinstance(backend, LocalBackend)  # the layer below the facade
    processor = backend.processor
    print(
        f"    ranked-list maintenance: "
        f"{processor.update_timer.mean_ms:.3f} ms per element on average"
    )

    # ----------------------------------------------------------------- query
    print("\n=== 3. Asking a k-SIR query by keywords ===")
    keywords = dataset.topical_keywords(topic=0, count=3)
    query = dataset.make_query(k=5, keywords=keywords)
    print(f"    keywords: {', '.join(keywords)}")
    print(f"    inferred query vector (non-zero topics): {query.nonzero_topics}")

    print("\n=== 4. Answering with MTTD, CELF and Top-k Representative ===")
    for algorithm in ("mttd", "celf", "topk"):
        result = engine.query(query, algorithm=algorithm, epsilon=0.1)
        print(f"\n    [{algorithm}] {result.summary()}")
        for element in processor.result_elements(result):
            words = " ".join(element.tokens[:8])
            followers = processor.window.follower_count(element.element_id)
            print(f"        e{element.element_id:<6} ({followers:>3} refs in window)  {words}")

    print(
        "\nDone.  See examples/checkpoint_restore.py for warm restarts and "
        "examples/sharded_serving.py for sharded + standing-query serving."
    )


if __name__ == "__main__":
    main()
